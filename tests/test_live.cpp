// Live indexing tests (docs/LIVE_INDEXING.md): incremental-vs-batch
// equivalence (random flush points must produce exactly the index a
// one-shot IndexBuilder builds, term for term), tiered compaction
// correctness (merges fold segments without re-encoding and answers never
// change), snapshot-isolated readers racing flushes and compaction (the
// TSan tier-1 leg runs this), crash recovery (uncommitted segment files
// and a stale MANIFEST.tmp must not survive reopen), and the DocMap
// offset/rebase API live segments rely on.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "core/hetindex.hpp"
#include "util/binary_io.hpp"

namespace hetindex {
namespace {

class TempDir {
 public:
  explicit TempDir(const std::string& tag) {
    path_ = (std::filesystem::temp_directory_path() /
             ("hetindex_live_" + tag + "_" + std::to_string(counter_++)))
                .string();
    std::filesystem::create_directories(path_);
  }
  ~TempDir() { std::filesystem::remove_all(path_); }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  static inline int counter_ = 0;
  std::string path_;
};

/// A small deterministic corpus read back as documents, plus the batch
/// index built from the same container files.
struct Corpus {
  std::vector<std::string> files;
  std::vector<Document> docs;
};

Corpus make_corpus(const std::string& dir, std::uint64_t bytes, std::uint64_t seed) {
  CollectionSpec spec = wikipedia_like();
  spec.total_bytes = bytes;
  spec.seed = seed;
  const auto coll = generate_collection(spec, dir);
  Corpus corpus;
  corpus.files = coll.paths();
  for (const auto& file : corpus.files) {
    for (auto& doc : container_read(file)) corpus.docs.push_back(std::move(doc));
  }
  return corpus;
}

/// Ingests the corpus into `dir` with flushes at the given doc indices
/// (plus a final flush), then runs compaction to completion.
IndexWriter ingest(const Corpus& corpus, const std::string& dir,
                   IndexWriterOptions opts, const std::vector<std::size_t>& flush_after) {
  auto writer = IndexWriter::open(dir, opts);
  EXPECT_TRUE(writer.has_value());
  auto w = std::move(writer).value();
  std::size_t next_flush = 0;
  for (std::size_t i = 0; i < corpus.docs.size(); ++i) {
    const auto id = w.add_document(corpus.docs[i].url, corpus.docs[i].body);
    EXPECT_EQ(id, i);
    if (next_flush < flush_after.size() && flush_after[next_flush] == i) {
      ++next_flush;
      w.flush();
    }
  }
  w.flush();
  return w;
}

/// Asserts the snapshot answers every term exactly like the batch index.
void expect_equivalent(const LiveSnapshot& snap, const InvertedIndex& batch,
                       bool positions) {
  EXPECT_EQ(snap.term_count(), batch.term_count());
  std::uint64_t compared = 0;
  snap.for_each_term([&](std::string_view term) {
    const auto live = snap.lookup(term);
    const auto ref =
        positions ? batch.lookup_positional(term) : batch.lookup(term);
    EXPECT_TRUE(live.has_value()) << term;
    EXPECT_TRUE(ref.has_value()) << term;
    if (live && ref) {
      EXPECT_EQ(live->doc_ids, ref->doc_ids) << term;
      EXPECT_EQ(live->tfs, ref->tfs) << term;
      if (positions) {
        EXPECT_EQ(live->positions, ref->positions) << term;
      }
    }
    ++compared;
    return true;
  });
  EXPECT_EQ(compared, batch.term_count());
}

// -------------------------------------------------- incremental == batch

TEST(LiveEquivalence, RandomFlushPointsMatchBatchBuild) {
  TempDir corpus_dir("corpus");
  TempDir batch_dir("batch");
  TempDir live_dir("live");
  const auto corpus = make_corpus(corpus_dir.path(), 256 << 10, /*seed=*/0xC0FFEE);
  ASSERT_GT(corpus.docs.size(), 16u);

  IndexBuilder builder;
  builder.emit_segment(true);
  builder.build(corpus.files, batch_dir.path());
  const auto batch =
      InvertedIndex::open(batch_dir.path(), {IndexBackend::kSegment}).value();

  // Random flush points; seeded so failures reproduce.
  std::mt19937 rng(42);
  std::vector<std::size_t> flush_after;
  for (std::size_t i = 0; i < corpus.docs.size(); ++i) {
    if (rng() % 7 == 0) flush_after.push_back(i);
  }
  IndexWriterOptions opts;
  opts.flush_threshold_bytes = 0;  // explicit flushes only
  opts.background_compaction = false;
  auto w = ingest(corpus, live_dir.path(), opts, flush_after);

  const auto snap = w.snapshot();
  EXPECT_EQ(snap->doc_count(), corpus.docs.size());
  EXPECT_GT(snap->segment_count(), 1u);
  expect_equivalent(*snap, batch, /*positions=*/false);

  // Compaction must not change a single answer.
  w.compact_now();
  const auto compacted = w.snapshot();
  EXPECT_LE(compacted->segment_count(), snap->segment_count());
  expect_equivalent(*compacted, batch, /*positions=*/false);

  // A fresh read-only open of the committed state agrees too.
  const auto live = LiveIndex::open(live_dir.path());
  ASSERT_TRUE(live.has_value());
  expect_equivalent(*live.value().snapshot(), batch, /*positions=*/false);
}

TEST(LiveEquivalence, PositionalPostingsSurviveFlushAndMerge) {
  TempDir corpus_dir("pcorpus");
  TempDir batch_dir("pbatch");
  TempDir live_dir("plive");
  const auto corpus = make_corpus(corpus_dir.path(), 96 << 10, /*seed=*/0xBEEF);

  IndexBuilder builder;
  builder.emit_segment(true);
  builder.config().parser.record_positions = true;
  builder.build(corpus.files, batch_dir.path());
  const auto batch =
      InvertedIndex::open(batch_dir.path(), {IndexBackend::kSegment}).value();

  IndexWriterOptions opts;
  opts.flush_threshold_bytes = 0;
  opts.background_compaction = false;
  opts.parser.record_positions = true;
  // Flush every 10 documents, then fold everything back together: the
  // §III.F byte-concatenation merge must preserve positions bit-exactly.
  std::vector<std::size_t> flush_after;
  for (std::size_t i = 9; i < corpus.docs.size(); i += 10) flush_after.push_back(i);
  auto w = ingest(corpus, live_dir.path(), opts, flush_after);
  w.compact_now();
  expect_equivalent(*w.snapshot(), batch, /*positions=*/true);
}

// -------------------------------------------------- writer lifecycle

TEST(LiveWriter, EmptyFlushIsNoOp) {
  TempDir dir("noop");
  auto w = IndexWriter::open(dir.path(), {}).value();
  EXPECT_EQ(w.flush().value(), 0u);
  EXPECT_EQ(w.snapshot()->segment_count(), 0u);
  EXPECT_EQ(w.add_document("u://0", "alpha beta gamma"), 0u);
  EXPECT_EQ(w.buffered_docs(), 1u);
  EXPECT_GT(w.flush().value(), 0u);
  EXPECT_EQ(w.flush().value(), 0u);  // buffer drained by the first flush
  EXPECT_EQ(w.committed_docs(), 1u);
  EXPECT_EQ(w.buffered_docs(), 0u);
}

TEST(LiveWriter, ReopenContinuesDocIdsFromCommittedState) {
  TempDir dir("reopen");
  IndexWriterOptions opts;
  opts.background_compaction = false;
  {
    auto w = IndexWriter::open(dir.path(), opts).value();
    w.add_document("u://0", "apple banana");
    w.flush();
    w.add_document("u://1", "banana cherry");
    w.flush();
    // A buffered-but-unflushed document is dropped by the destructor.
    w.add_document("u://2", "never committed");
  }
  auto w = IndexWriter::open(dir.path(), opts).value();
  EXPECT_EQ(w.committed_docs(), 2u);
  EXPECT_EQ(w.snapshot()->segment_count(), 2u);
  EXPECT_EQ(w.add_document("u://2", "cherry dates"), 2u);
  w.flush();
  const auto snap = w.snapshot();
  EXPECT_EQ(snap->doc_count(), 3u);
  const auto hits = snap->lookup(normalize_term("banana"));
  ASSERT_TRUE(hits.has_value());
  EXPECT_EQ(hits->doc_ids, (std::vector<std::uint32_t>{0, 1}));
  // The per-segment doc maps resolve every committed id.
  for (std::uint32_t id = 0; id < 3; ++id) {
    const auto loc = snap->locate(id);
    ASSERT_TRUE(loc.has_value()) << id;
    EXPECT_EQ(loc->url, "u://" + std::to_string(id));
  }
}

TEST(LiveWriter, CrashRecoveryDropsUncommittedFiles) {
  TempDir dir("crash");
  IndexWriterOptions opts;
  opts.background_compaction = false;
  {
    auto w = IndexWriter::open(dir.path(), opts).value();
    w.add_document("u://0", "alpha beta");
    w.flush();
    w.add_document("u://1", "beta gamma");
    w.flush();
  }
  // Simulate a crash between segment write and manifest rename: a stray
  // segment pair on disk that no manifest names, plus a torn MANIFEST.tmp.
  const std::string stray_seg = live_segment_path(dir.path(), 99);
  const std::string stray_map = live_docmap_path(dir.path(), 99);
  write_file(stray_seg, std::vector<std::uint8_t>{'j', 'u', 'n', 'k'});
  write_file(stray_map, std::vector<std::uint8_t>{'j', 'u', 'n', 'k'});
  write_file(manifest_path(dir.path()) + ".tmp", std::vector<std::uint8_t>{0});

  auto w = IndexWriter::open(dir.path(), opts).value();
  EXPECT_EQ(w.committed_docs(), 2u);  // last committed snapshot, intact
  EXPECT_EQ(w.snapshot()->segment_count(), 2u);
  EXPECT_FALSE(file_exists(stray_seg));
  EXPECT_FALSE(file_exists(stray_map));
  EXPECT_FALSE(file_exists(manifest_path(dir.path()) + ".tmp"));
  // New commits keep working after recovery.
  w.add_document("u://2", "gamma delta");
  w.flush();
  EXPECT_EQ(w.snapshot()->doc_count(), 3u);
}

TEST(LiveWriter, CorruptManifestReportsStructuredError) {
  TempDir dir("badmanifest");
  {
    auto w = IndexWriter::open(dir.path(), {}).value();
    w.add_document("u://0", "alpha");
    w.flush();
  }
  auto bytes = read_file(manifest_path(dir.path()));
  bytes[bytes.size() / 2] ^= 0x40;  // flip a bit inside the CRC'd payload
  write_file(manifest_path(dir.path()), bytes);

  const auto writer = IndexWriter::open(dir.path(), {});
  ASSERT_FALSE(writer.has_value());
  EXPECT_EQ(writer.error().code, ErrorCode::kCorrupt);
  const auto index = LiveIndex::open(dir.path());
  ASSERT_FALSE(index.has_value());
  EXPECT_EQ(index.error().code, ErrorCode::kCorrupt);
}

TEST(LiveIndexOpen, MissingManifestReportsNotFound) {
  TempDir dir("nomanifest");
  const auto index = LiveIndex::open(dir.path());
  ASSERT_FALSE(index.has_value());
  EXPECT_EQ(index.error().code, ErrorCode::kNotFound);
}

// -------------------------------------------------- tiered compaction

TEST(LiveCompaction, TieredMergeFoldsAdjacentSegments) {
  TempDir dir("tiered");
  IndexWriterOptions opts;
  opts.background_compaction = false;
  opts.merge_factor = 2;
  opts.tier_base_bytes = 1 << 20;  // everything lands in tier 0
  auto w = IndexWriter::open(dir.path(), opts).value();
  for (std::uint32_t i = 0; i < 8; ++i) {
    w.add_document("u://" + std::to_string(i),
                   "common term" + std::to_string(i) + " filler words here");
    w.flush();
  }
  EXPECT_EQ(w.snapshot()->segment_count(), 8u);
  w.compact_now();
  const auto snap = w.snapshot();
  EXPECT_LT(snap->segment_count(), 8u);
  EXPECT_EQ(snap->doc_count(), 8u);
  // Every document is still findable, postings globally sorted.
  const auto hits = snap->lookup(normalize_term("common"));
  ASSERT_TRUE(hits.has_value());
  ASSERT_EQ(hits->doc_ids.size(), 8u);
  for (std::uint32_t i = 0; i < 8; ++i) EXPECT_EQ(hits->doc_ids[i], i);
  // Doc maps were rebased and folded along with the postings.
  for (std::uint32_t i = 0; i < 8; ++i) {
    const auto loc = snap->locate(i);
    ASSERT_TRUE(loc.has_value()) << i;
    EXPECT_EQ(loc->url, "u://" + std::to_string(i));
  }
  // Obsolete segment files are reclaimed once no snapshot holds them.
  std::size_t seg_files = 0;
  for (const auto& e : std::filesystem::directory_iterator(dir.path())) {
    if (e.path().extension() == ".seg") ++seg_files;
  }
  EXPECT_EQ(seg_files, snap->segment_count());
}

TEST(LiveCompaction, RangeLookupSkipsNonOverlappingSegments) {
  TempDir dir("range");
  IndexWriterOptions opts;
  opts.background_compaction = false;
  auto w = IndexWriter::open(dir.path(), opts).value();
  for (std::uint32_t i = 0; i < 6; ++i) {
    w.add_document("u://" + std::to_string(i), "shared unique" + std::to_string(i));
    if (i % 2 == 1) w.flush();  // two docs per segment -> 3 segments
  }
  const auto snap = w.snapshot();
  ASSERT_EQ(snap->segment_count(), 3u);
  std::size_t touched = 0;
  const auto hits = snap->lookup_range(normalize_term("shared"), 2, 3, &touched);
  ASSERT_TRUE(hits.has_value());
  EXPECT_EQ(hits->doc_ids, (std::vector<std::uint32_t>{2, 3}));
  EXPECT_EQ(touched, 1u);  // only the middle segment overlaps [2, 3]
}

// -------------------------------------------------- readers vs writer races

TEST(LiveConcurrency, QueriesRaceFlushAndCompaction) {
  TempDir corpus_dir("ccorpus");
  TempDir dir("conc");
  const auto corpus = make_corpus(corpus_dir.path(), 128 << 10, /*seed=*/0xFACE);

  IndexWriterOptions opts;
  opts.flush_threshold_bytes = 8 << 10;  // flush roughly every few docs
  opts.tier_base_bytes = 4 << 10;
  opts.merge_factor = 2;
  opts.background_compaction = true;
  auto w = IndexWriter::open(dir.path(), opts).value();

  std::atomic<bool> done{false};
  std::atomic<std::uint64_t> reads{0};
  auto reader = [&] {
    std::uint64_t last_docs = 0;
    while (!done.load(std::memory_order_acquire)) {
      const auto snap = w.snapshot();  // lock-free grab, then frozen state
      // Committed doc count never goes backwards across snapshots.
      EXPECT_GE(snap->doc_count(), last_docs);
      last_docs = snap->doc_count();
      std::uint64_t expected = 0;
      for (const auto& seg : snap->segments()) expected += seg->doc_count();
      if (snap->memtable() != nullptr) expected += snap->memtable()->doc_count();
      EXPECT_EQ(snap->total_docs(), expected);
      EXPECT_EQ(snap->doc_count(), expected - snap->deleted_docs());
      snap->for_each_term([&](std::string_view term) {
        const auto hits = snap->lookup(term);
        EXPECT_TRUE(hits.has_value());
        // Disjoint ascending segments -> globally sorted, unique doc ids.
        for (std::size_t i = 1; i < hits->doc_ids.size(); ++i) {
          EXPECT_LT(hits->doc_ids[i - 1], hits->doc_ids[i]);
        }
        return reads.fetch_add(1, std::memory_order_relaxed) % 64 != 63;
      });
    }
  };
  std::thread r1(reader);
  std::thread r2(reader);
  for (const auto& doc : corpus.docs) w.add_document(doc.url, doc.body);
  w.flush();
  w.compact_now();
  done.store(true, std::memory_order_release);
  r1.join();
  r2.join();
  EXPECT_GT(reads.load(), 0u);
  EXPECT_EQ(w.snapshot()->doc_count(), corpus.docs.size());
}

// ----------------------------- mutable index: memtable, deletes, updates

/// Splits a test body into the tokens the parser indexes: split on single
/// spaces (the synthetic bodies below make tokenization trivial), then the
/// same normalization the indexer applies (lowercase + Porter stem).
std::vector<std::string> split_tokens(const std::string& body) {
  std::vector<std::string> tokens;
  std::size_t start = 0;
  while (start < body.size()) {
    const auto end = body.find(' ', start);
    const auto stop = end == std::string::npos ? body.size() : end;
    if (stop > start) {
      tokens.push_back(normalize_term(body.substr(start, stop - start)));
    }
    if (end == std::string::npos) break;
    start = end + 1;
  }
  return tokens;
}

/// The writer-side reference model of one document for brute-force checks.
struct RefDoc {
  std::string url;
  std::vector<std::string> tokens;
  bool alive = false;
};

std::uint32_t ref_tf(const RefDoc& doc, const std::string& term) {
  std::uint32_t tf = 0;
  for (const auto& t : doc.tokens) {
    if (t == term) ++tf;
  }
  return tf;
}

/// Brute-force tf-ranked reference for the boolean modes: every alive doc
/// matching per `conjunctive`, scored by summed tf, sorted exactly like
/// the production tie-break (score desc, doc id asc).
std::vector<ScoredDoc> brute_force_tf(const std::vector<RefDoc>& ref,
                                      const std::vector<std::string>& terms,
                                      bool conjunctive, std::size_t k) {
  std::vector<ScoredDoc> hits;
  for (std::uint32_t id = 0; id < ref.size(); ++id) {
    if (!ref[id].alive) continue;
    std::uint64_t sum = 0;
    bool all = true;
    bool any = false;
    for (const auto& term : terms) {
      const auto tf = ref_tf(ref[id], term);
      sum += tf;
      all = all && tf > 0;
      any = any || tf > 0;
    }
    if (conjunctive ? all : any) hits.push_back({id, static_cast<double>(sum)});
  }
  std::sort(hits.begin(), hits.end(), [](const ScoredDoc& a, const ScoredDoc& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.doc_id < b.doc_id;
  });
  if (hits.size() > k) hits.resize(k);
  return hits;
}

TEST(LiveMutable, MemtableDocsSearchableBeforeAnyFlush) {
  TempDir dir("memvis");
  IndexWriterOptions opts;
  opts.flush_threshold_bytes = 0;  // never auto-flush
  opts.background_compaction = false;
  auto w = IndexWriter::open(dir.path(), opts).value();
  const auto searcher_ptr =
      Searcher::open(SearchSource::live([&w] { return w.snapshot(); })).value();
  const Searcher& searcher = *searcher_ptr;

  EXPECT_EQ(w.add_document("u://0", "zebra quokka zebra"), 0u);
  ASSERT_EQ(w.snapshot()->segment_count(), 0u);  // nothing hit disk yet

  QueryRequest req;
  req.query = Query::term(normalize_term("zebra"));
  const auto resp = searcher.search(req);
  ASSERT_TRUE(resp.has_value());
  ASSERT_EQ(resp.value().hits.size(), 1u);
  EXPECT_EQ(resp.value().hits[0].doc_id, 0u);

  // The raw snapshot surface agrees: postings, stats, and the doc map row
  // are all served straight out of the memtable.
  const auto snap = w.snapshot();
  const auto hits = snap->lookup(normalize_term("zebra"));
  ASSERT_TRUE(hits.has_value());
  EXPECT_EQ(hits->doc_ids, (std::vector<std::uint32_t>{0}));
  EXPECT_EQ(hits->tfs, (std::vector<std::uint32_t>{2}));
  EXPECT_EQ(snap->doc_count(), 1u);
  const auto loc = snap->locate(0);
  ASSERT_TRUE(loc.has_value());
  EXPECT_EQ(loc->url, "u://0");

  // A doc added after the Searcher was constructed is visible to the very
  // next query (the provider re-resolves the snapshot every call).
  EXPECT_EQ(w.add_document("u://1", "zebra"), 1u);
  const auto again = searcher.search(req);
  ASSERT_TRUE(again.has_value());
  EXPECT_EQ(again.value().hits.size(), 2u);
}

TEST(LiveMutable, DeleteHidesDocFromEveryModeAndTheResultCache) {
  TempDir dir("delmodes");
  IndexWriterOptions opts;
  opts.background_compaction = false;
  auto w = IndexWriter::open(dir.path(), opts).value();
  w.add_document("u://0", "apple banana");
  w.add_document("u://1", "apple banana cherry");
  w.add_document("u://2", "apple cherry");
  w.flush();
  w.add_document("u://3", "apple banana");  // memtable-resident

  const auto searcher_ptr =
      Searcher::open(SearchSource::live([&w] { return w.snapshot(); })).value();
  const Searcher& searcher = *searcher_ptr;
  const auto run = [&](Query (*make)(std::vector<std::string>), bool exhaustive) {
    QueryRequest req;
    req.query = make({normalize_term("apple"), normalize_term("banana")});
    req.exhaustive = exhaustive;
    auto resp = searcher.search(req);
    EXPECT_TRUE(resp.has_value());
    return std::move(resp).value();
  };
  struct Mode {
    const char* name;
    Query (*make)(std::vector<std::string>);
  };
  const std::vector<Mode> modes = {{"bag", &Query::bag},
                                   {"conjunction", &Query::conjunction},
                                   {"disjunction", &Query::disjunction}};
  // Warm the result cache with every mode while all four docs are alive.
  for (const auto& mode : modes) {
    const auto resp = run(mode.make, /*exhaustive=*/false);
    bool saw = false;
    for (const auto& hit : resp.hits) saw = saw || hit.doc_id == 1;
    EXPECT_TRUE(saw) << mode.name;
  }

  // Delete a flushed doc and a memtable-only doc. Both must vanish from
  // every mode immediately — including queries the cache answered a moment
  // ago (each delete publishes a new snapshot id, rolling every cache key).
  ASSERT_TRUE(w.delete_document(1).has_value());
  ASSERT_TRUE(w.delete_document(3).has_value());
  EXPECT_EQ(w.deleted_docs(), 2u);
  for (const auto& mode : modes) {
    for (const bool exhaustive : {false, true}) {
      const auto resp = run(mode.make, exhaustive);
      EXPECT_FALSE(resp.hits.empty()) << mode.name;
      for (const auto& hit : resp.hits) {
        EXPECT_NE(hit.doc_id, 1u) << mode.name << " ex=" << exhaustive;
        EXPECT_NE(hit.doc_id, 3u) << mode.name << " ex=" << exhaustive;
      }
    }
  }

  // Deleting an id the writer never assigned is rejected outright.
  const auto bad = w.delete_document(1000);
  ASSERT_FALSE(bad.has_value());
  EXPECT_EQ(bad.error().code, ErrorCode::kInvalidArgument);
  // Re-deleting is an idempotent no-op (no new tombstone generation).
  ASSERT_TRUE(w.delete_document(1).has_value());
  EXPECT_EQ(w.deleted_docs(), 2u);
}

TEST(LiveMutable, UpdateReplacesDocumentUnderANewId) {
  TempDir dir("update");
  IndexWriterOptions opts;
  opts.background_compaction = false;
  auto w = IndexWriter::open(dir.path(), opts).value();
  EXPECT_EQ(w.add_document("u://0", "stale words here"), 0u);
  w.flush();

  const auto updated = w.update_document(0, "u://0", "fresh words here");
  ASSERT_TRUE(updated.has_value());
  EXPECT_EQ(updated.value(), 1u);  // update = delete + re-add, fresh id

  const auto snap = w.snapshot();
  EXPECT_EQ(snap->doc_count(), 1u);
  EXPECT_EQ(snap->total_docs(), 2u);
  EXPECT_EQ(snap->deleted_docs(), 1u);
  EXPECT_TRUE(snap->is_deleted(0));

  const auto searcher_ptr = Searcher::open(SearchSource::snapshot(snap)).value();
  const Searcher& searcher = *searcher_ptr;
  QueryRequest req;
  req.query = Query::term(normalize_term("stale"));
  auto resp = searcher.search(req);
  ASSERT_TRUE(resp.has_value());
  EXPECT_TRUE(resp.value().hits.empty());
  req.query = Query::term(normalize_term("fresh"));
  resp = searcher.search(req);
  ASSERT_TRUE(resp.has_value());
  ASSERT_EQ(resp.value().hits.size(), 1u);
  EXPECT_EQ(resp.value().hits[0].doc_id, 1u);

  // Updating an already-deleted doc still works: the delete half is an
  // idempotent no-op and the re-add proceeds under the next fresh id.
  const auto again = w.update_document(0, "u://0", "even fresher");
  ASSERT_TRUE(again.has_value());
  EXPECT_EQ(w.snapshot()->doc_count(), 2u);
}

TEST(LiveMutable, DeletesSurviveReopenAndPhantomTombstonesDoNot) {
  TempDir dir("delreopen");
  IndexWriterOptions opts;
  opts.background_compaction = false;
  {
    auto w = IndexWriter::open(dir.path(), opts).value();
    w.add_document("u://0", "alpha beta");
    w.add_document("u://1", "beta gamma");
    w.flush();
    ASSERT_TRUE(w.delete_document(0).has_value());
    // Tombstone a memtable-only doc, then "crash" before it flushes: the
    // destructor drops the buffered doc, leaving a durable tombstone for
    // an id that was never committed.
    w.add_document("u://2", "gamma delta");
    ASSERT_TRUE(w.delete_document(2).has_value());
  }
  auto w = IndexWriter::open(dir.path(), opts).value();
  // The committed delete survived the reopen...
  EXPECT_EQ(w.deleted_docs(), 1u);
  EXPECT_TRUE(w.snapshot()->is_deleted(0));
  // ...and the phantom bit above next_doc_id was truncated during
  // recovery, so the reassigned id is not born dead.
  EXPECT_EQ(w.add_document("u://2b", "delta epsilon"), 2u);
  const auto snap = w.snapshot();
  EXPECT_FALSE(snap->is_deleted(2));
  const auto hits = snap->lookup(normalize_term("delta"));
  ASSERT_TRUE(hits.has_value());
  EXPECT_EQ(hits->doc_ids, (std::vector<std::uint32_t>{2}));
}

TEST(LiveMutable, RandomizedAddDeleteUpdateMatchesBruteForce) {
  TempDir dir("fuzz");
  IndexWriterOptions opts;
  opts.flush_threshold_bytes = 2 << 10;  // auto-flush every few docs
  opts.tier_base_bytes = 1 << 10;
  opts.merge_factor = 2;
  opts.background_compaction = false;  // compacted at checkpoints below
  auto w = IndexWriter::open(dir.path(), opts).value();
  const auto searcher_ptr =
      Searcher::open(SearchSource::live([&w] { return w.snapshot(); })).value();
  const Searcher& searcher = *searcher_ptr;

  const std::vector<std::string> vocab = {
      "alder", "birch", "cedar", "dogwood", "elm",    "fir",
      "ginkgo", "hazel", "ivy",   "juniper", "katsura", "larch"};
  std::mt19937 rng(0xD1CE5);
  std::vector<RefDoc> ref;  // indexed by doc id, mirrors the writer
  const auto alive_ids = [&] {
    std::vector<std::uint32_t> ids;
    for (std::uint32_t id = 0; id < ref.size(); ++id) {
      if (ref[id].alive) ids.push_back(id);
    }
    return ids;
  };
  const auto make_body = [&] {
    std::string body;
    const std::size_t len = 3 + rng() % 12;
    for (std::size_t i = 0; i < len; ++i) {
      if (!body.empty()) body += ' ';
      body += vocab[rng() % vocab.size()];
    }
    return body;
  };
  const auto check = [&] {
    // A couple of random boolean queries against the brute-force model;
    // ranked mode is additionally diffed exhaustive-vs-pruned.
    for (int q = 0; q < 3; ++q) {
      QueryRequest req;
      std::vector<std::string> pair = {normalize_term(vocab[rng() % vocab.size()]),
                                       normalize_term(vocab[rng() % vocab.size()])};
      if (pair[0] == pair[1]) pair.pop_back();
      req.k = 1u << 20;  // everything: the whole ranking must match
      req.use_result_cache = false;
      for (const bool conjunctive : {true, false}) {
        req.query = conjunctive ? Query::conjunction(pair) : Query::disjunction(pair);
        const auto resp = searcher.search(req);
        ASSERT_TRUE(resp.has_value());
        const auto expected = brute_force_tf(ref, pair, conjunctive, req.k);
        ASSERT_EQ(resp.value().hits.size(), expected.size())
            << (conjunctive ? "conjunction" : "disjunction");
        for (std::size_t i = 0; i < expected.size(); ++i) {
          EXPECT_EQ(resp.value().hits[i].doc_id, expected[i].doc_id) << i;
          EXPECT_EQ(resp.value().hits[i].score, expected[i].score) << i;
        }
      }
      req.query = Query::bag(pair);
      req.k = 16;
      req.exhaustive = true;
      const auto exhaustive = searcher.search(req);
      req.exhaustive = false;
      const auto pruned = searcher.search(req);
      ASSERT_TRUE(exhaustive.has_value());
      ASSERT_TRUE(pruned.has_value());
      ASSERT_EQ(exhaustive.value().hits.size(), pruned.value().hits.size());
      for (std::size_t i = 0; i < pruned.value().hits.size(); ++i) {
        EXPECT_EQ(exhaustive.value().hits[i].doc_id, pruned.value().hits[i].doc_id);
        EXPECT_EQ(exhaustive.value().hits[i].score, pruned.value().hits[i].score);
        EXPECT_TRUE(ref[pruned.value().hits[i].doc_id].alive);
      }
    }
  };

  for (int step = 0; step < 320; ++step) {
    const auto alive = alive_ids();
    const auto op = rng() % 10;
    if (op < 6 || alive.empty()) {
      const auto body = make_body();
      const auto url = "u://" + std::to_string(ref.size());
      const auto id = w.add_document(url, body);
      ASSERT_EQ(id, ref.size());
      ref.push_back({url, split_tokens(body), true});
    } else if (op < 8) {
      const auto victim = alive[rng() % alive.size()];
      ASSERT_TRUE(w.delete_document(victim).has_value());
      ref[victim].alive = false;
    } else {
      const auto victim = alive[rng() % alive.size()];
      const auto body = make_body();
      const auto url = "u://" + std::to_string(ref.size()) + "v2";
      const auto id = w.update_document(victim, url, body);
      ASSERT_TRUE(id.has_value());
      ASSERT_EQ(id.value(), ref.size());
      ref[victim].alive = false;
      ref.push_back({url, split_tokens(body), true});
    }
    if (step % 80 == 79) {
      w.flush();
      w.compact_now();  // physical reclaim mid-stream must not change answers
    }
    if (step % 40 == 19) check();
  }
  w.flush();
  w.compact_now();
  check();

  const auto snap = w.snapshot();
  std::uint64_t alive_count = 0;
  for (const auto& doc : ref) alive_count += doc.alive ? 1 : 0;
  EXPECT_EQ(snap->doc_count(), alive_count);
  EXPECT_EQ(snap->total_docs(), ref.size());
}

TEST(LiveMutable, ReclaimedIndexRanksBitIdenticallyToFreshBuildOfSurvivors) {
  TempDir corpus_dir("rcorpus");
  TempDir live_dir("rlive");
  TempDir fresh_dir("rfresh");
  const auto corpus = make_corpus(corpus_dir.path(), 128 << 10, /*seed=*/0xFEED);
  ASSERT_GT(corpus.docs.size(), 24u);

  IndexWriterOptions opts;
  opts.flush_threshold_bytes = 0;
  opts.background_compaction = false;
  auto w = IndexWriter::open(live_dir.path(), opts).value();
  for (std::size_t i = 0; i < corpus.docs.size(); ++i) {
    w.add_document(corpus.docs[i].url, corpus.docs[i].body);
    if (i % 16 == 15) w.flush();
  }
  w.flush();
  std::vector<std::uint32_t> survivors;
  for (std::uint32_t id = 0; id < corpus.docs.size(); ++id) {
    if (id % 3 == 0) {
      ASSERT_TRUE(w.delete_document(id).has_value());
    } else {
      survivors.push_back(id);
    }
  }
  w.compact_now();  // full physical reclaim

  // Reclaim proof: no raw postings list mentions a tombstoned doc anymore.
  const auto snap = w.snapshot();
  snap->for_each_term([&](std::string_view term) {
    const auto hits = snap->lookup(term);
    EXPECT_TRUE(hits.has_value());
    for (const auto doc : hits->doc_ids) {
      EXPECT_NE(doc % 3, 0u) << "unreclaimed posting for " << term;
    }
    return true;
  });

  // A fresh index built from only the survivors, in the same order.
  auto fresh = IndexWriter::open(fresh_dir.path(), opts).value();
  for (const auto id : survivors) {
    fresh.add_document(corpus.docs[id].url, corpus.docs[id].body);
  }
  fresh.flush();
  fresh.compact_now();
  const auto fresh_snap = fresh.snapshot();
  EXPECT_EQ(snap->doc_count(), fresh_snap->doc_count());

  // Rankings must be bit-identical: same scores (exact double equality),
  // same docs modulo the survivor id remap, both executors.
  std::vector<std::string> terms;
  snap->for_each_term([&](std::string_view term) {
    terms.emplace_back(term);
    return true;
  });
  const auto live_ptr = Searcher::open(SearchSource::snapshot(snap)).value();
  const auto fresh_ptr =
      Searcher::open(SearchSource::snapshot(fresh_snap)).value();
  const Searcher& live_searcher = *live_ptr;
  const Searcher& fresh_searcher = *fresh_ptr;
  std::mt19937 rng(7);
  for (int q = 0; q < 24; ++q) {
    QueryRequest req;
    req.query = Query::bag({terms[rng() % terms.size()], terms[rng() % terms.size()],
                            terms[rng() % terms.size()]});
    req.k = 10;
    for (const bool exhaustive : {false, true}) {
      req.exhaustive = exhaustive;
      const auto live_resp = live_searcher.search(req);
      const auto fresh_resp = fresh_searcher.search(req);
      ASSERT_TRUE(live_resp.has_value());
      ASSERT_TRUE(fresh_resp.has_value());
      const auto& live_hits = live_resp.value().hits;
      const auto& fresh_hits = fresh_resp.value().hits;
      ASSERT_EQ(live_hits.size(), fresh_hits.size()) << "query " << q;
      for (std::size_t i = 0; i < live_hits.size(); ++i) {
        const auto it = std::lower_bound(survivors.begin(), survivors.end(),
                                         live_hits[i].doc_id);
        ASSERT_TRUE(it != survivors.end() && *it == live_hits[i].doc_id);
        const auto remapped =
            static_cast<std::uint32_t>(it - survivors.begin());
        EXPECT_EQ(remapped, fresh_hits[i].doc_id) << "query " << q << " hit " << i;
        EXPECT_EQ(live_hits[i].score, fresh_hits[i].score) << "query " << q << " hit " << i;
      }
    }
  }
}

TEST(LiveConcurrency, SearchesRaceDeletesFlushAndCompaction) {
  TempDir corpus_dir("dcorpus");
  TempDir dir("dconc");
  const auto corpus = make_corpus(corpus_dir.path(), 96 << 10, /*seed=*/0xDEAD);

  IndexWriterOptions opts;
  opts.flush_threshold_bytes = 8 << 10;
  opts.tier_base_bytes = 4 << 10;
  opts.merge_factor = 2;
  opts.background_compaction = true;
  auto w = IndexWriter::open(dir.path(), opts).value();
  const auto searcher_ptr =
      Searcher::open(SearchSource::live([&w] { return w.snapshot(); })).value();
  const Searcher& searcher = *searcher_ptr;

  std::atomic<bool> done{false};
  std::atomic<std::uint64_t> answered{0};
  auto reader = [&] {
    std::mt19937 rng(std::hash<std::thread::id>{}(std::this_thread::get_id()));
    std::uint64_t last_total = 0;
    std::uint64_t last_deleted = 0;
    while (!done.load(std::memory_order_acquire)) {
      const auto snap = w.snapshot();
      // The id space and the tombstone set only ever grow.
      EXPECT_GE(snap->total_docs(), last_total);
      EXPECT_GE(snap->deleted_docs(), last_deleted);
      last_total = snap->total_docs();
      last_deleted = snap->deleted_docs();
      EXPECT_EQ(snap->doc_count(), snap->total_docs() - snap->deleted_docs());
      // Exercise the full search stack (memtable cursors, tombstone
      // filter, stats, caches) against whatever snapshot is current.
      std::vector<std::string> terms;
      snap->for_each_term([&](std::string_view term) {
        terms.emplace_back(term);
        return terms.size() < 8;
      });
      if (terms.empty()) continue;
      QueryRequest req;
      std::vector<std::string> pair = {terms[rng() % terms.size()],
                                       terms[rng() % terms.size()]};
      req.query = rng() % 2 == 0 ? Query::bag(std::move(pair))
                                 : Query::disjunction(std::move(pair));
      const auto resp = searcher.search(req);
      EXPECT_TRUE(resp.has_value());
      answered.fetch_add(1, std::memory_order_relaxed);
    }
  };
  std::thread r1(reader);
  std::thread r2(reader);
  std::mt19937 rng(99);
  std::uint32_t added = 0;
  for (const auto& doc : corpus.docs) {
    w.add_document(doc.url, doc.body);
    ++added;
    if (added % 7 == 0) {
      // Delete a random already-assigned doc; racing readers must never
      // see it resurface once their snapshot includes the tombstone.
      ASSERT_TRUE(w.delete_document(rng() % added).has_value());
    } else if (added % 11 == 0) {
      const auto id = w.update_document(rng() % added, doc.url + "#v2", doc.body);
      ASSERT_TRUE(id.has_value());
      ++added;  // the re-add consumed an id
    }
  }
  w.flush();
  w.compact_now();
  done.store(true, std::memory_order_release);
  r1.join();
  r2.join();
  EXPECT_GT(answered.load(), 0u);
  const auto snap = w.snapshot();
  EXPECT_EQ(snap->doc_count(), snap->total_docs() - snap->deleted_docs());
}

// -------------------------------------------------- DocMap offset/rebase

TEST(DocMapRebase, NonZeroBaseRoundTripsThroughV2Header) {
  TempDir dir("dmv2");
  const std::string path = dir.path() + "/m.docmap";
  DocMapBuilder builder(/*doc_id_base=*/100);
  builder.add_file(100, /*file_seq=*/7, {"u://a", "u://b"}, {3, 4});
  EXPECT_EQ(builder.base(), 100u);
  EXPECT_EQ(builder.doc_count(), 2u);
  builder.write(path);

  const auto map = DocMap::open(path);
  EXPECT_EQ(map.base(), 100u);
  EXPECT_EQ(map.doc_count(), 2u);
  EXPECT_FALSE(map.contains(99));
  EXPECT_TRUE(map.contains(101));
  EXPECT_FALSE(map.contains(102));
  EXPECT_EQ(map.location(100).url, "u://a");
  EXPECT_EQ(map.location(101).token_count, 4u);
  EXPECT_EQ(map.location(101).file_seq, 7u);
}

TEST(DocMapRebase, AppendFoldsAdjacentMapsPreservingIds) {
  TempDir dir("dmfold");
  const std::string a_path = dir.path() + "/a.docmap";
  const std::string b_path = dir.path() + "/b.docmap";
  const std::string merged_path = dir.path() + "/m.docmap";
  DocMapBuilder a(0);
  a.add_file(0, 1, {"u://0", "u://1", "u://2"}, {5, 6, 7});
  a.write(a_path);
  DocMapBuilder b(3);
  b.add_file(3, 2, {"u://3", "u://4"}, {8, 9});
  b.write(b_path);

  DocMapBuilder merged(0);
  merged.append(DocMap::open(a_path));
  merged.append(DocMap::open(b_path));
  merged.write(merged_path);

  const auto map = DocMap::open(merged_path);
  EXPECT_EQ(map.base(), 0u);
  EXPECT_EQ(map.doc_count(), 5u);
  for (std::uint32_t id = 0; id < 5; ++id) {
    EXPECT_EQ(map.location(id).url, "u://" + std::to_string(id)) << id;
  }
  EXPECT_EQ(map.location(2).file_seq, 1u);  // grouping survives the fold
  EXPECT_EQ(map.location(3).file_seq, 2u);
  EXPECT_EQ(map.location(4).token_count, 9u);
}

}  // namespace
}  // namespace hetindex
