// End-to-end pipeline tests: build an index with the full Fig. 9 pipeline,
// query it, and check it against a brute-force reference index. Also
// verifies the CPU+GPU configuration is bit-identical to CPU-only.

#include <gtest/gtest.h>

#include <filesystem>
#include <map>
#include <set>

#include "core/hetindex.hpp"
#include "corpus/container.hpp"
#include "corpus/synthetic.hpp"
#include "parse/parser.hpp"
#include "pipeline/reorder_buffer.hpp"
#include "postings/merger.hpp"

namespace hetindex {
namespace {

class TempDir {
 public:
  explicit TempDir(const std::string& tag) {
    path_ = (std::filesystem::temp_directory_path() /
             ("hetindex_pipe_" + tag + "_" + std::to_string(counter_++)))
                .string();
    std::filesystem::create_directories(path_);
  }
  ~TempDir() { std::filesystem::remove_all(path_); }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  static inline int counter_ = 0;
  std::string path_;
};

/// Brute-force reference: parse every doc through the same text path and
/// accumulate postings in a map.
std::map<std::string, std::vector<std::pair<std::uint32_t, std::uint32_t>>> reference_index(
    const std::vector<std::string>& files) {
  std::map<std::string, std::vector<std::pair<std::uint32_t, std::uint32_t>>> ref;
  Parser parser;
  std::uint32_t base = 0;
  for (const auto& file : files) {
    const auto docs = container_read(file);
    for (const auto& tok : parser.parse_flat(docs)) {
      auto& list = ref[tok.term];
      const std::uint32_t doc = base + tok.local_doc;
      if (!list.empty() && list.back().first == doc) {
        ++list.back().second;
      } else {
        list.emplace_back(doc, 1);
      }
    }
    base += static_cast<std::uint32_t>(docs.size());
  }
  return ref;
}

class PipelineFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    corpus_dir_ = new TempDir("corpus");
    auto spec = wikipedia_like();
    spec.total_bytes = 1u << 21;  // 2 MB, 4 files
    spec.file_bytes = 512u << 10;
    spec.vocabulary = 8000;
    spec.avg_doc_tokens = 200;
    collection_ = new Collection(generate_collection(spec, corpus_dir_->path()));
  }
  static void TearDownTestSuite() {
    delete collection_;
    delete corpus_dir_;
  }

  static inline TempDir* corpus_dir_ = nullptr;
  static inline Collection* collection_ = nullptr;
};

TEST_F(PipelineFixture, BuildsQueryableIndexMatchingReference) {
  TempDir out("out");
  IndexBuilder builder;
  builder.parsers(2).cpu_indexers(1).gpus(1);
  builder.config().sampler.popular_count = 30;
  const auto report = builder.build(collection_->paths(), out.path());

  EXPECT_EQ(report.documents, collection_->total_docs());
  EXPECT_EQ(report.runs.size(), collection_->files.size());
  EXPECT_GT(report.terms, 1000u);
  EXPECT_GT(report.tokens, 10000u);

  const auto ref = reference_index(collection_->paths());
  EXPECT_EQ(report.terms, ref.size());

  const auto index = InvertedIndex::open(out.path(), {}).value();
  EXPECT_EQ(index.term_count(), ref.size());
  // Every reference term must be retrievable with exactly the reference
  // postings.
  std::size_t checked = 0;
  for (const auto& [term, postings] : ref) {
    const auto got = index.lookup(term);
    ASSERT_TRUE(got.has_value()) << term;
    ASSERT_EQ(got->doc_ids.size(), postings.size()) << term;
    for (std::size_t i = 0; i < postings.size(); ++i) {
      ASSERT_EQ(got->doc_ids[i], postings[i].first) << term;
      ASSERT_EQ(got->tfs[i], postings[i].second) << term;
    }
    if (++checked >= 500) break;  // bounded for test time; terms iterate in order
  }
}

TEST_F(PipelineFixture, GpuAndCpuOnlyBuildsProduceIdenticalIndexes) {
  TempDir out_cpu("cpu"), out_gpu("gpu");
  IndexBuilder cpu_builder;
  cpu_builder.parsers(1).cpu_indexers(2).gpus(0);
  IndexBuilder gpu_builder;
  gpu_builder.parsers(2).cpu_indexers(1).gpus(2);
  cpu_builder.build(collection_->paths(), out_cpu.path());
  gpu_builder.build(collection_->paths(), out_gpu.path());

  const auto a = InvertedIndex::open(out_cpu.path(), {}).value();
  const auto b = InvertedIndex::open(out_gpu.path(), {}).value();
  ASSERT_EQ(a.term_count(), b.term_count());
  for (std::size_t i = 0; i < a.entries().size(); ++i) {
    ASSERT_EQ(a.entries()[i].term, b.entries()[i].term);
    const auto pa = a.lookup(a.entries()[i].term);
    const auto pb = b.lookup(b.entries()[i].term);
    ASSERT_EQ(pa->doc_ids, pb->doc_ids) << a.entries()[i].term;
    ASSERT_EQ(pa->tfs, pb->tfs) << a.entries()[i].term;
  }
}

TEST_F(PipelineFixture, RunRecordsCarryStageCosts) {
  TempDir out("rec");
  IndexBuilder builder;
  builder.parsers(2).cpu_indexers(2).gpus(2);
  const auto report = builder.build(collection_->paths(), out.path());
  ASSERT_EQ(report.runs.size(), collection_->files.size());
  for (const auto& run : report.runs) {
    EXPECT_GT(run.source_bytes, 0u);
    EXPECT_GT(run.tokens, 0u);
    EXPECT_GT(run.parse_seconds, 0.0);
    EXPECT_GE(run.read_seconds, 0.0);
    EXPECT_GT(run.decompress_seconds, 0.0);
    ASSERT_EQ(run.cpu_index_seconds.size(), 2u);
    ASSERT_EQ(run.gpu_timings.size(), 2u);
    for (const auto& g : run.gpu_timings) EXPECT_GE(g.index_seconds, 0.0);
    EXPECT_GT(run.flush_seconds, 0.0);
  }
  // Table V-style split: both CPU and GPU did real work.
  EXPECT_GT(report.cpu_total().tokens, 0u);
  EXPECT_GT(report.gpu_total().tokens, 0u);
  EXPECT_EQ(report.cpu_total().tokens + report.gpu_total().tokens, report.tokens);
  // Popular collections on CPU → CPU handles more tokens per term (Zipf).
  const double cpu_tokens_per_term = static_cast<double>(report.cpu_total().tokens) /
                                     static_cast<double>(report.cpu_total().new_terms);
  const double gpu_tokens_per_term = static_cast<double>(report.gpu_total().tokens) /
                                     static_cast<double>(report.gpu_total().new_terms);
  EXPECT_GT(cpu_tokens_per_term, gpu_tokens_per_term);
}

TEST_F(PipelineFixture, MergedOutputMatchesPerRunOutput) {
  TempDir out("merge");
  IndexBuilder builder;
  builder.parsers(1).cpu_indexers(1).gpus(0).merge_output(true);
  const auto report = builder.build(collection_->paths(), out.path());
  EXPECT_GT(report.merge_seconds, 0.0);

  const auto index = InvertedIndex::open(out.path(), {}).value();
  const auto merged = RunFile::open(IndexLayout::merged_path(out.path()));
  std::size_t checked = 0;
  for (const auto& e : index.entries()) {
    const auto full = index.lookup(e.term);
    std::vector<std::uint32_t> ids, tfs;
    ASSERT_TRUE(merged.fetch({e.shard, e.handle}, ids, tfs)) << e.term;
    ASSERT_EQ(ids, full->doc_ids) << e.term;
    ASSERT_EQ(tfs, full->tfs) << e.term;
    if (++checked >= 300) break;
  }
}

TEST_F(PipelineFixture, SingleParserSingleIndexerStillCorrect) {
  TempDir out("min");
  IndexBuilder builder;
  builder.parsers(1).cpu_indexers(1).gpus(0);
  const auto report = builder.build(collection_->paths(), out.path());
  EXPECT_EQ(report.documents, collection_->total_docs());
  const auto ref = reference_index(collection_->paths());
  EXPECT_EQ(report.terms, ref.size());
}

TEST_F(PipelineFixture, ManyParsersDoNotBreakOrdering) {
  TempDir out("many");
  IndexBuilder builder;
  builder.parsers(6).cpu_indexers(2).gpus(2);
  const auto report = builder.build(collection_->paths(), out.path());
  EXPECT_EQ(report.documents, collection_->total_docs());
  // Postings sortedness is validated inside run-file writing (checks), and
  // queries must see monotone doc ids.
  const auto index = InvertedIndex::open(out.path(), {}).value();
  std::size_t checked = 0;
  for (const auto& e : index.entries()) {
    const auto got = index.lookup(e.term);
    for (std::size_t i = 1; i < got->doc_ids.size(); ++i)
      ASSERT_LT(got->doc_ids[i - 1], got->doc_ids[i]) << e.term;
    if (++checked >= 200) break;
  }
}

TEST(ReorderBufferTest, ReleasesInSequenceOrder) {
  ReorderBuffer<int> buf(4);
  buf.push(1, 10);
  buf.push(0, 9);
  EXPECT_EQ(buf.pop_next(), 9);
  EXPECT_EQ(buf.pop_next(), 10);
  buf.push(2, 11);
  buf.close();
  EXPECT_EQ(buf.pop_next(), 11);
  EXPECT_EQ(buf.pop_next(), std::nullopt);
}

TEST(ReorderBufferTest, HeadSequenceBypassesFullWindow) {
  // Deadlock regression: window full of later sequences must still accept
  // the head-of-line sequence.
  ReorderBuffer<int> buf(2);
  buf.push(1, 1);
  buf.push(2, 2);
  buf.push(0, 0);  // must not block
  EXPECT_EQ(buf.pop_next(), 0);
  EXPECT_EQ(buf.pop_next(), 1);
  EXPECT_EQ(buf.pop_next(), 2);
}

TEST(CoreApi, NormalizeTermMatchesParsePath) {
  EXPECT_EQ(normalize_term("Parallelism"), "parallel");
  EXPECT_EQ(normalize_term("  Running!  "), "run");
  EXPECT_EQ(normalize_term("42"), "42");
}

TEST(CoreApi, VersionString) { EXPECT_EQ(version_string(), "1.7.0"); }

}  // namespace
}  // namespace hetindex
