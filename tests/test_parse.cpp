// Tests for the parser (Fig. 3 Steps 1–5): parsed-block format, regrouping
// invariants and the serialized read scheduler.

#include <gtest/gtest.h>

#include <filesystem>
#include <map>
#include <set>
#include <thread>

#include "corpus/container.hpp"
#include "corpus/synthetic.hpp"
#include "dict/trie_table.hpp"
#include "parse/parser.hpp"
#include "parse/read_scheduler.hpp"
#include "text/porter.hpp"
#include "text/stopwords.hpp"

namespace hetindex {
namespace {

std::vector<Document> make_docs(std::initializer_list<const char*> bodies) {
  std::vector<Document> docs;
  std::uint32_t id = 0;
  for (const char* b : bodies) {
    Document d;
    d.local_id = id++;
    d.body = b;
    docs.push_back(std::move(d));
  }
  return docs;
}

TEST(ParsedBlock, GroupWriterRoundTrip) {
  ParsedGroup group;
  group.trie_idx = 42;
  GroupWriter w(group);
  w.begin_doc(7);
  w.add_term("lication");
  w.add_term("le");
  w.end_doc();
  w.begin_doc(9);
  w.add_term("");
  w.end_doc();
  std::vector<std::pair<std::uint32_t, std::string>> seen;
  for_each_posting(group, [&](std::uint32_t doc, std::string_view term) {
    seen.emplace_back(doc, std::string(term));
  });
  ASSERT_EQ(seen.size(), 3u);
  EXPECT_EQ(seen[0], (std::pair<std::uint32_t, std::string>{7, "lication"}));
  EXPECT_EQ(seen[1], (std::pair<std::uint32_t, std::string>{7, "le"}));
  EXPECT_EQ(seen[2], (std::pair<std::uint32_t, std::string>{9, ""}));
  EXPECT_EQ(group.tokens, 3u);
  EXPECT_EQ(group.chars, 10u);
}

TEST(ParsedBlock, EmptyDocRecordsAreDropped) {
  ParsedGroup group;
  GroupWriter w(group);
  w.begin_doc(1);
  w.end_doc();  // no terms
  EXPECT_TRUE(group.data.empty());
}

TEST(Parser, GroupsAreSortedAndPrefixStripped) {
  Parser parser({.strip_html = false});
  const auto docs = make_docs({"application apple zebra 42 across the plain"});
  const auto block = parser.parse(docs, 0, 0, 0);
  ASSERT_FALSE(block.groups.empty());
  for (std::size_t i = 1; i < block.groups.size(); ++i) {
    EXPECT_LT(block.groups[i - 1].trie_idx, block.groups[i].trie_idx);
  }
  // "the" is a stop word → gone; every surviving term reconstructs as
  // prefix + stored suffix and lands in its own collection.
  std::set<std::string> reconstructed;
  for (const auto& g : block.groups) {
    for_each_posting(g, [&](std::uint32_t, std::string_view suffix) {
      reconstructed.insert(trie_prefix(g.trie_idx) + std::string(suffix));
    });
  }
  const std::set<std::string> expected = {porter_stem("application"), porter_stem("apple"),
                                          porter_stem("zebra"), "42", porter_stem("across"),
                                          porter_stem("plain")};
  EXPECT_EQ(reconstructed, expected);
}

TEST(Parser, RegroupingPreservesEveryToken) {
  // Property: the grouped block and the flat (ablation) parse contain the
  // same multiset of (doc, term) pairs.
  Parser parser({.strip_html = true});
  const auto docs =
      make_docs({"<p>Parallel indexers consume parsed streams rapidly</p>",
                 "<p>the indexers and the parsers pipeline</p>",
                 "<p>zzzy zoo 01 0195 3d Parallel</p>"});
  const auto block = parser.parse(docs, 0, 0, 0);
  const auto flat = parser.parse_flat(docs);

  std::multiset<std::pair<std::uint32_t, std::string>> grouped_pairs, flat_pairs;
  for (const auto& g : block.groups) {
    for_each_posting(g, [&](std::uint32_t doc, std::string_view suffix) {
      grouped_pairs.emplace(doc, trie_prefix(g.trie_idx) + std::string(suffix));
    });
  }
  for (const auto& t : flat) flat_pairs.emplace(t.local_doc, t.term);
  EXPECT_EQ(grouped_pairs, flat_pairs);
  EXPECT_EQ(block.tokens, flat.size());
}

TEST(Parser, StepTimesAreReported) {
  Parser parser;
  ParseTimes times;
  std::vector<Document> docs;
  for (int i = 0; i < 50; ++i)
    docs.push_back({static_cast<std::uint32_t>(i), "",
                    "<html>the quick brown foxes were jumping over lazy dogs "
                    "repeatedly and continuously</html>"});
  parser.parse(docs, 0, 0, 0, &times);
  EXPECT_GT(times.tokenize, 0.0);
  EXPECT_GT(times.total(), 0.0);
  // §III.C: regrouping is a small fraction of parsing (~5%). Allow slack on
  // a tiny input but it must not dominate.
  EXPECT_LT(times.regroup, times.total() * 0.6);
}

TEST(Parser, DocIdBaseIsRecorded) {
  Parser parser;
  const auto block = parser.parse(make_docs({"hello world"}), 3, 1, 1000);
  EXPECT_EQ(block.seq, 3u);
  EXPECT_EQ(block.parser_id, 1u);
  EXPECT_EQ(block.doc_id_base, 1000u);
  EXPECT_EQ(block.doc_count, 1u);
}

class ReadSchedulerFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (std::filesystem::temp_directory_path() / "hetindex_sched_test").string();
    std::filesystem::create_directories(dir_);
    auto spec = wikipedia_like();
    spec.total_bytes = 1u << 20;
    spec.file_bytes = 256u << 10;
    spec.vocabulary = 5000;
    collection_ = generate_collection(spec, dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string dir_;
  Collection collection_;
};

TEST_F(ReadSchedulerFixture, HandsOutFilesInOrderWithMonotoneDocBases) {
  for (const std::size_t depth : {std::size_t{1}, std::size_t{4}}) {
    ReadSchedulerOptions opt;
    opt.prefetch_depth = depth;
    ReadScheduler sched(collection_.paths(), opt);
    std::uint64_t expected_seq = 0;
    std::uint32_t expected_base = 0;
    for (;;) {
      auto next = sched.next();
      ASSERT_TRUE(next.has_value()) << next.error().to_string();
      if (!next.value().has_value()) break;
      const ScheduledRead& read = *next.value();
      EXPECT_EQ(read.seq, expected_seq++);
      EXPECT_EQ(read.doc_id_base, expected_base);
      expected_base += static_cast<std::uint32_t>(read.docs.size());
      EXPECT_GT(read.uncompressed_bytes, read.compressed_bytes);
    }
    EXPECT_EQ(expected_seq, collection_.files.size()) << "depth " << depth;
    EXPECT_EQ(sched.docs_assigned(), collection_.total_docs());
  }
}

TEST_F(ReadSchedulerFixture, ConcurrentParsersSeeDisjointFiles) {
  for (const std::size_t depth : {std::size_t{1}, std::size_t{4}}) {
    ReadSchedulerOptions opt;
    opt.prefetch_depth = depth;
    ReadScheduler sched(collection_.paths(), opt);
    std::mutex mu;
    std::map<std::uint64_t, std::uint32_t> seen;  // seq → doc base
    {
      std::vector<std::jthread> threads;
      for (int t = 0; t < 4; ++t) {
        threads.emplace_back([&] {
          for (;;) {
            auto next = sched.next();
            ASSERT_TRUE(next.has_value()) << next.error().to_string();
            if (!next.value().has_value()) return;
            std::scoped_lock lock(mu);
            EXPECT_TRUE(
                seen.emplace(next.value()->seq, next.value()->doc_id_base).second);
          }
        });
      }
    }
    ASSERT_EQ(seen.size(), collection_.files.size()) << "depth " << depth;
    // Doc bases must be monotone in seq even under concurrency.
    std::uint32_t prev = 0;
    for (const auto& [seq, base] : seen) {
      EXPECT_GE(base, prev) << "seq " << seq;
      prev = base;
    }
  }
}

}  // namespace
}  // namespace hetindex
