// Block-Max pruning equivalence suite (ISSUE: block-based postings).
//
// Three layers of coverage:
//   cursors    the PostingsCursor state machine — segment (skip-table),
//              decoded, and concatenated backends must agree posting for
//              posting under identical next/seek/shallow_seek sequences,
//              and block bounds must dominate every real contribution
//   executor   Block-Max MaxScore == the exhaustive scorer, bit-identical
//              docs and scores, across batch / live / merged segments,
//              with and without the .bmx and .maxtf sidecars
//   plumbing   merged .bmx equals a recompute oracle, corrupt .bmx fails
//              the open (no silent degrade), and pruning provably fires
//              (search_blocks_skipped_total > 0) on a prunable workload
//
// Runs under both the TSan and ASan tier-1 legs (scripts/tier1.sh).

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <random>
#include <set>
#include <string>
#include <vector>

#include "core/hetindex.hpp"
#include "postings/cursor.hpp"
#include "search/topk.hpp"

namespace hetindex {
namespace {

class TempDir {
 public:
  explicit TempDir(const std::string& tag) {
    path_ = (std::filesystem::temp_directory_path() /
             ("hetindex_bmax_" + tag + "_" + std::to_string(counter_++)))
                .string();
    std::filesystem::create_directories(path_);
  }
  ~TempDir() { std::filesystem::remove_all(path_); }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  static inline int counter_ = 0;
  std::string path_;
};

/// A random strictly-increasing postings list spanning several blocks.
QueryPostings random_list(std::uint64_t seed, std::size_t n, std::uint32_t doc_span) {
  std::mt19937 rng(static_cast<std::uint32_t>(seed));
  std::set<std::uint32_t> ids;
  while (ids.size() < n) ids.insert(rng() % doc_span);
  QueryPostings p;
  for (auto id : ids) {
    p.doc_ids.push_back(id);
    p.tfs.push_back(1 + rng() % 9);
  }
  return p;
}

struct BlockedList {
  std::vector<std::uint8_t> blob;
  std::vector<PostingBlockEntry> entries;
};

BlockedList encode_blocked(const QueryPostings& p) {
  BlockedList out;
  out.blob = encode_postings_blocked(PostingCodec::kVByte, p.doc_ids, p.tfs, nullptr,
                                     &out.entries);
  return out;
}

std::unique_ptr<PostingsCursor> segment_cursor(const BlockedList& l) {
  return make_segment_cursor(l.blob.data(), l.blob.size(), l.entries.data(),
                             l.entries.size(), nullptr);
}

std::unique_ptr<PostingsCursor> decoded_cursor(const QueryPostings& p) {
  return make_decoded_cursor(std::make_shared<const QueryPostings>(p));
}

// ------------------------------------------------------ cursor state machine

TEST(Cursor, SegmentCursorWalksWholeList) {
  const auto list = random_list(1, 700, 100000);
  const auto enc = encode_blocked(list);
  auto c = segment_cursor(enc);
  EXPECT_EQ(c->size(), list.doc_ids.size());
  EXPECT_EQ(c->last_doc(), list.doc_ids.back());
  EXPECT_TRUE(c->valid());
  EXPECT_FALSE(c->positioned());  // fresh cursors are shallow
  c->seek(0);
  for (std::size_t i = 0; i < list.doc_ids.size(); ++i) {
    ASSERT_TRUE(c->valid() && c->positioned()) << i;
    EXPECT_EQ(c->docid(), list.doc_ids[i]);
    EXPECT_EQ(c->tf(), list.tfs[i]);
    c->next();
  }
  EXPECT_FALSE(c->valid());
}

TEST(Cursor, SeekLandsOnLowerBound) {
  const auto list = random_list(2, 500, 50000);
  const auto enc = encode_blocked(list);
  auto c = segment_cursor(enc);
  std::mt19937 rng(3);
  std::uint32_t target = 0;
  while (true) {
    target += rng() % 400;
    c->seek(target);
    const auto it =
        std::lower_bound(list.doc_ids.begin(), list.doc_ids.end(), target);
    if (it == list.doc_ids.end()) {
      EXPECT_FALSE(c->valid());
      break;
    }
    ASSERT_TRUE(c->positioned());
    EXPECT_EQ(c->docid(), *it) << "target " << target;
    const auto i = static_cast<std::size_t>(it - list.doc_ids.begin());
    EXPECT_EQ(c->tf(), list.tfs[i]);
  }
}

TEST(Cursor, BackendsAgreeUnderRandomOperations) {
  const auto list = random_list(4, 800, 200000);
  const auto enc = encode_blocked(list);
  auto a = segment_cursor(enc);
  auto b = decoded_cursor(list);
  std::mt19937 rng(5);
  a->seek(0);
  b->seek(0);
  while (a->valid() && b->valid()) {
    ASSERT_EQ(a->positioned(), b->positioned());
    if (a->positioned()) {
      ASSERT_EQ(a->docid(), b->docid());
      ASSERT_EQ(a->tf(), b->tf());
    }
    ASSERT_EQ(a->block_last_doc(), b->block_last_doc());
    ASSERT_EQ(a->block_max_tf(), b->block_max_tf());
    ASSERT_EQ(a->docs_in_block(), b->docs_in_block());
    switch (rng() % 3) {
      case 0:
        if (a->positioned()) {
          a->next();
          b->next();
        } else {
          a->seek(0);
          b->seek(0);
        }
        break;
      case 1: {
        const std::uint32_t t =
            (a->positioned() ? a->docid() : 0) + rng() % 1000;
        a->seek(t);
        b->seek(t);
        break;
      }
      default: {
        const std::uint32_t t =
            (a->positioned() ? a->docid() : 0) + rng() % 2000;
        a->shallow_seek(t);
        b->shallow_seek(t);
        break;
      }
    }
  }
  EXPECT_EQ(a->valid(), b->valid());
}

TEST(Cursor, LongSeekSkipsBlocksWithoutDecoding) {
  const auto list = random_list(6, 1000, 1000000);
  const auto enc = encode_blocked(list);
  ASSERT_GT(enc.entries.size(), 4u);
  auto c = segment_cursor(enc);
  c->seek(list.doc_ids.back());  // jump over everything but the last block
  ASSERT_TRUE(c->positioned());
  EXPECT_EQ(c->docid(), list.doc_ids.back());
  EXPECT_GE(c->blocks_skipped(), enc.entries.size() - 1);
}

TEST(Cursor, BlockMaxScoreDominatesEveryContribution) {
  const auto list = random_list(7, 600, 80000);
  const auto enc = encode_blocked(list);
  auto c = segment_cursor(enc);
  const Bm25Params params;
  const double idf = bm25_idf(list.doc_ids.size(), 100000);
  c->set_score_params(idf, params);
  c->seek(0);
  while (c->valid()) {
    const double bound = c->block_max_score();
    const std::uint32_t last = c->block_last_doc();
    while (c->positioned() && c->docid() <= last) {
      // Any document length: the bound drops the length term entirely.
      const double real = bm25_contribution(idf, c->tf(), 50.0, 100.0, params);
      EXPECT_LE(real, bound + 1e-12);
      c->next();
      if (!c->valid()) return;
    }
  }
}

TEST(Cursor, ConcatChainsDisjointParts) {
  QueryPostings full;
  std::vector<std::unique_ptr<PostingsCursor>> parts;
  std::uint32_t base = 0;
  for (int s = 0; s < 3; ++s) {
    auto part = random_list(10 + s, 200, 5000);
    for (auto& d : part.doc_ids) d += base;
    base += 6000;
    full.doc_ids.insert(full.doc_ids.end(), part.doc_ids.begin(), part.doc_ids.end());
    full.tfs.insert(full.tfs.end(), part.tfs.begin(), part.tfs.end());
    parts.push_back(decoded_cursor(part));
  }
  auto c = make_concat_cursor(std::move(parts));
  EXPECT_EQ(c->size(), full.doc_ids.size());
  EXPECT_EQ(c->last_doc(), full.doc_ids.back());
  // Walk…
  c->seek(0);
  for (std::size_t i = 0; i < full.doc_ids.size(); ++i) {
    ASSERT_TRUE(c->positioned()) << i;
    EXPECT_EQ(c->docid(), full.doc_ids[i]);
    EXPECT_EQ(c->tf(), full.tfs[i]);
    c->next();
  }
  EXPECT_FALSE(c->valid());
  // …and seek across part boundaries.
  auto seeker = make_concat_cursor([&] {
    std::vector<std::unique_ptr<PostingsCursor>> ps;
    std::uint32_t b = 0;
    for (int s = 0; s < 3; ++s) {
      auto part = random_list(10 + s, 200, 5000);
      for (auto& d : part.doc_ids) d += b;
      b += 6000;
      ps.push_back(decoded_cursor(part));
    }
    return ps;
  }());
  std::mt19937 rng(12);
  std::uint32_t target = 0;
  while (true) {
    target += rng() % 1500;
    seeker->seek(target);
    const auto it = std::lower_bound(full.doc_ids.begin(), full.doc_ids.end(), target);
    if (it == full.doc_ids.end()) {
      EXPECT_FALSE(seeker->valid());
      break;
    }
    ASSERT_TRUE(seeker->positioned());
    EXPECT_EQ(seeker->docid(), *it) << "target " << target;
  }
}

TEST(Cursor, MaterializeRoundTrips) {
  const auto list = random_list(13, 400, 30000);
  const auto enc = encode_blocked(list);
  auto c = segment_cursor(enc);
  const auto out = materialize_cursor(*c);
  EXPECT_EQ(out.doc_ids, list.doc_ids);
  EXPECT_EQ(out.tfs, list.tfs);
}

// ----------------------------------------- executor equivalence, all stacks

std::vector<std::vector<std::string>> sample_queries(
    const std::vector<std::string>& vocabulary, std::size_t count, std::uint32_t seed) {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<std::size_t> pick(0, vocabulary.size() - 1);
  std::uniform_int_distribution<std::size_t> arity(1, 5);
  std::vector<std::vector<std::string>> queries;
  queries.reserve(count);
  for (std::size_t q = 0; q < count; ++q) {
    std::vector<std::string> terms;
    const std::size_t n = arity(rng);
    for (std::size_t t = 0; t < n; ++t) terms.push_back(vocabulary[pick(rng)]);
    queries.push_back(std::move(terms));
  }
  return queries;
}

/// Bit-identical docs and scores between the pruned and exhaustive engines.
void expect_identical_rankings(const Searcher& searcher,
                               const std::vector<std::vector<std::string>>& queries,
                               std::size_t k) {
  for (const auto& terms : queries) {
    QueryRequest fast;
    fast.query = Query::bag(terms);
    fast.k = k;
    fast.use_result_cache = false;
    QueryRequest slow = fast;
    slow.exhaustive = true;
    const auto a = searcher.search(fast);
    const auto b = searcher.search(slow);
    ASSERT_TRUE(a.has_value());
    ASSERT_TRUE(b.has_value());
    ASSERT_EQ(a.value().hits.size(), b.value().hits.size());
    for (std::size_t i = 0; i < a.value().hits.size(); ++i) {
      ASSERT_EQ(a.value().hits[i].doc_id, b.value().hits[i].doc_id)
          << "rank " << i << " k=" << k;
      ASSERT_EQ(a.value().hits[i].score, b.value().hits[i].score)
          << "rank " << i << " k=" << k;
    }
  }
}

/// A multi-segment live index over a synthetic corpus; queries drawn from
/// its own vocabulary.
struct LiveStack {
  std::unique_ptr<TempDir> corpus_dir;
  std::unique_ptr<TempDir> live_dir;
  std::unique_ptr<IndexWriter> writer;
  std::vector<std::string> vocab;
};

LiveStack build_live_stack(std::uint64_t seed) {
  LiveStack s;
  s.corpus_dir = std::make_unique<TempDir>("corpus");
  s.live_dir = std::make_unique<TempDir>("live");
  CollectionSpec spec = wikipedia_like();
  spec.total_bytes = 128 << 10;
  spec.seed = seed;
  const auto coll = generate_collection(spec, s.corpus_dir->path());
  IndexWriterOptions opts;
  opts.flush_threshold_bytes = 0;
  opts.background_compaction = false;
  s.writer = std::make_unique<IndexWriter>(
      IndexWriter::open(s.live_dir->path(), opts).value());
  std::mt19937 rng(9);
  for (const auto& file : coll.paths()) {
    for (const auto& doc : container_read(file)) {
      s.writer->add_document(doc.url, doc.body);
      if (rng() % 11 == 0) s.writer->flush();
    }
  }
  s.writer->flush();
  s.writer->snapshot()->for_each_term([&s](std::string_view term) {
    s.vocab.emplace_back(term);
    return true;
  });
  return s;
}

TEST(BlockMaxEquivalence, LiveThenStrippedSidecarsThenMerged) {
  auto stack = build_live_stack(0xB10C);
  const auto queries = sample_queries(stack.vocab, 30, 21);

  const auto multi = stack.writer->snapshot();
  ASSERT_GT(multi->segments().size(), 1u);
  for (const auto& seg : multi->segments()) {
    ASSERT_NE(seg->block_index(), nullptr);  // flush wrote every .bmx
  }
  {  // full sidecars: zero-copy block cursors end to end
    const auto searcher_ptr = Searcher::open(SearchSource::snapshot(multi)).value();
    const Searcher& searcher = *searcher_ptr;
    expect_identical_rankings(searcher, queries, 10);
    expect_identical_rankings(searcher, queries, 1);
  }

  // Strip the sidecars on a copy (the original keeps them so compaction
  // below exercises the fix-up path, not the recompute-less fallback).
  TempDir stripped("stripped");
  std::filesystem::copy(stack.live_dir->path(), stripped.path(),
                        std::filesystem::copy_options::recursive |
                            std::filesystem::copy_options::overwrite_existing);
  {  // no .bmx: decoded-cursor fallback must change nothing
    for (const auto& seg : multi->segments()) {
      std::filesystem::remove(block_index_sidecar_path(
          live_segment_path(stripped.path(), seg->id())));
    }
    const auto reopened = LiveIndex::open(stripped.path()).value();
    for (const auto& seg : reopened.snapshot()->segments()) {
      EXPECT_EQ(seg->block_index(), nullptr);
    }
    const auto searcher_ptr = Searcher::open(SearchSource::snapshot(reopened.snapshot())).value();
    const Searcher& searcher = *searcher_ptr;
    expect_identical_rankings(searcher, queries, 10);
  }

  {  // no .maxtf either: loose bounds, still exact
    for (const auto& seg : multi->segments()) {
      std::filesystem::remove(max_tf_sidecar_path(
          live_segment_path(stripped.path(), seg->id())));
    }
    const auto reopened = LiveIndex::open(stripped.path()).value();
    const auto searcher_ptr = Searcher::open(SearchSource::snapshot(reopened.snapshot())).value();
    const Searcher& searcher = *searcher_ptr;
    expect_identical_rankings(searcher, queries, 10);
  }

  // Merged: compaction fixes up the skip tables per block (§III.F byte
  // concatenation — offsets shift, maxima take max) without decoding. The
  // merged sidecar must equal a from-scratch recompute.
  stack.writer->compact_now();
  const auto merged = stack.writer->snapshot();
  ASSERT_LT(merged->segments().size(), multi->segments().size());
  for (const auto& seg : merged->segments()) {
    const auto* bmx = seg->block_index();
    ASSERT_NE(bmx, nullptr);
    const auto oracle = compute_block_index(seg->reader());
    ASSERT_EQ(bmx->term_count(), oracle.term_count());
    ASSERT_EQ(bmx->total_blocks(), oracle.total_blocks());
    for (std::uint64_t ord = 0; ord < oracle.term_count(); ++ord) {
      const auto [got, got_n] = bmx->blocks(ord);
      const auto [want, want_n] = oracle.blocks(ord);
      ASSERT_EQ(got_n, want_n) << "term " << ord;
      for (std::size_t i = 0; i < want_n; ++i) {
        ASSERT_EQ(got[i], want[i]) << "term " << ord << " block " << i;
      }
    }
  }
  const auto searcher_ptr = Searcher::open(SearchSource::snapshot(merged)).value();
  const Searcher& searcher = *searcher_ptr;
  expect_identical_rankings(searcher, queries, 10);
}

TEST(BlockMaxEquivalence, BatchIndexMatchesExhaustive) {
  TempDir corpus_dir("bcorpus");
  TempDir index_dir("bindex");
  CollectionSpec spec = wikipedia_like();
  spec.total_bytes = 128 << 10;
  spec.seed = 0xBA7C4;
  const auto coll = generate_collection(spec, corpus_dir.path());
  IndexBuilder builder;
  builder.parsers(1).cpu_indexers(1).emit_segment(true);
  builder.build(coll.paths(), index_dir.path());
  const auto index = InvertedIndex::open(index_dir.path(), {}).value();
  ASSERT_TRUE(index.has_block_index());  // build wrote the skip table
  const auto docs = DocMap::open(doc_map_path(index_dir.path()));
  const auto searcher_ptr = Searcher::open(SearchSource::batch(index, docs)).value();
  const Searcher& searcher = *searcher_ptr;
  std::vector<std::string> vocab;
  index.for_each_term([&vocab](std::string_view t) { vocab.emplace_back(t); });
  for (const std::size_t k : {1u, 3u, 10u, 100u}) {
    expect_identical_rankings(searcher, sample_queries(vocab, 25, 31), k);
  }
}

TEST(BlockMax, CorruptSkipTableFailsLiveOpen) {
  auto stack = build_live_stack(0xBAD);
  const auto snap = stack.writer->snapshot();
  const auto bmx_path = block_index_sidecar_path(
      live_segment_path(stack.live_dir->path(), snap->segments().front()->id()));
  const auto size = std::filesystem::file_size(bmx_path);
  std::fstream f(bmx_path, std::ios::in | std::ios::out | std::ios::binary);
  f.seekg(static_cast<std::streamoff>(size - 8));
  char byte = 0;
  f.read(&byte, 1);
  f.seekp(static_cast<std::streamoff>(size - 8));
  byte = static_cast<char>(byte ^ 0x5A);
  f.write(&byte, 1);
  f.close();
  const auto reopened = LiveIndex::open(stack.live_dir->path());
  ASSERT_FALSE(reopened.has_value());
  EXPECT_EQ(reopened.error().code, ErrorCode::kCorrupt);
}

// ------------------------------------------------- pruning provably fires

TEST(BlockMax, SkipsBlocksOnPrunableWorkload) {
  // 3000 docs of a ubiquitous term; every 300th doc also holds a rare one.
  // Ranked {rare, common} k=1: the rare term is essential, the common list
  // (24 blocks) is only probed near the rare term's postings — whole
  // blocks in between are passed without decoding.
  TempDir dir("prune");
  std::vector<Document> docs;
  for (std::uint32_t i = 0; i < 3000; ++i) {
    Document d;
    d.local_id = i;
    d.url = "http://x/" + std::to_string(i);
    d.body = i % 300 == 0 ? "rarebird common token" : "common token filler";
    docs.push_back(std::move(d));
  }
  const auto corpus = dir.path() + "/c.hdc";
  container_write(corpus, docs);
  IndexBuilder builder;
  builder.parsers(1).cpu_indexers(1).emit_segment(true);
  builder.build({corpus}, dir.path() + "/index");
  const auto index = InvertedIndex::open(dir.path() + "/index", {}).value();
  ASSERT_TRUE(index.has_block_index());
  const auto map = DocMap::open(doc_map_path(dir.path() + "/index"));
  const auto searcher_ptr = Searcher::open(SearchSource::batch(index, map)).value();
  const Searcher& searcher = *searcher_ptr;

  QueryRequest request;
  request.query = Query::bag({normalize_term("rarebird"), normalize_term("common")});
  request.k = 1;
  request.use_result_cache = false;
  const auto pruned = searcher.search(request);
  ASSERT_TRUE(pruned.has_value());
  QueryRequest slow = request;
  slow.exhaustive = true;
  const auto full = searcher.search(slow);
  ASSERT_TRUE(full.has_value());
  ASSERT_EQ(pruned.value().hits.size(), full.value().hits.size());
  for (std::size_t i = 0; i < full.value().hits.size(); ++i) {
    EXPECT_EQ(pruned.value().hits[i].doc_id, full.value().hits[i].doc_id);
    EXPECT_EQ(pruned.value().hits[i].score, full.value().hits[i].score);
  }
  const auto after_ranked =
      searcher.metrics().snapshot().counter("search_blocks_skipped_total");
  EXPECT_GT(after_ranked, 0u) << "ranked pruning never skipped a block";

  // The conjunctive cursor intersection skips the same way: the rare
  // driver makes the common follower leap whole blocks.
  QueryRequest conj;
  conj.query = Query::conjunction({normalize_term("rarebird"), normalize_term("common")});
  conj.k = 5;
  ASSERT_TRUE(searcher.search(conj).has_value());
  EXPECT_GT(searcher.metrics().snapshot().counter("search_blocks_skipped_total"),
            after_ranked)
      << "conjunctive intersection never skipped a block";
}

}  // namespace
}  // namespace hetindex
