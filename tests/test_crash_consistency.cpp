// Crash-consistency harness (docs/DURABILITY.md): run a live-index
// workload — flushes interleaved with compaction, the two writers whose
// commits can race — under a tracing FaultEnv, then replay every prefix of
// the recorded write trace under four persistence policies that model what
// a power cut can leave behind (everything applied; metadata applied but
// unsynced file data lost; unsynced metadata lost; the in-flight write
// torn at a seeded offset). Each materialized crash image must recover:
// the manifest parses or is absent, IndexWriter::open succeeds, exactly
// the committed docs answer queries, and no *.tmp or orphan segment file
// survives reopen.
//
// The regression tests at the bottom pin the two bugs the harness caught:
// the MANIFEST commit lacking fsync-before-rename + dir-fsync-after, and
// the mmap pread fallback aborting on EINTR (with a double-close lurking
// on its error path). Plus: ENOSPC mid-flush must leave the writer usable,
// a failed fsync must fail the commit, and transient write faults must be
// absorbed by bounded retry.
//
// HETINDEX_CRASH_SEED overrides the torn-write seed (the CI fault leg runs
// one fixed and one randomized seed; the seed prints so failures replay).

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "io/env.hpp"
#include "io/mmap_file.hpp"
#include "live/manifest.hpp"
#include "live/tombstones.hpp"
#include "live/writer.hpp"
#include "util/binary_io.hpp"
#include "util/rng.hpp"

namespace hetindex {
namespace {

class TempDir {
 public:
  explicit TempDir(const std::string& tag) {
    path_ = (std::filesystem::temp_directory_path() /
             ("hetindex_crash_" + tag + "_" + std::to_string(counter_++)))
                .string();
    std::filesystem::create_directories(path_);
  }
  ~TempDir() { std::filesystem::remove_all(path_); }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  static inline int counter_ = 0;
  std::string path_;
};

std::uint64_t crash_seed() {
  if (const char* s = std::getenv("HETINDEX_CRASH_SEED")) {
    return std::strtoull(s, nullptr, 10);
  }
  return 42;
}

IndexWriterOptions tiny_writer_opts() {
  IndexWriterOptions opts;
  opts.flush_threshold_bytes = 0;     // explicit flush() only
  opts.background_compaction = false; // deterministic single-thread trace
  opts.merge_factor = 2;
  opts.tier_base_bytes = 1 << 10;     // everything is tier 0: merges fire
  return opts;
}

std::string doc_body(std::uint32_t i) {
  return "uniq" + std::to_string(i) + " alpha beta common";
}

// ------------------------------------------------------- crash simulation

/// How a replayed trace prefix is turned into an on-disk crash image.
enum class CrashPolicy {
  kLiteral,          ///< every applied op reached the disk intact
  kDropUnsyncedData, ///< dir entries survive, file data without a later
                     ///< fsync comes back empty (ext4-writeback zero-length)
  kDropUnsyncedMeta, ///< creations/renames/unlinks since the last dir fsync
                     ///< are lost; data written to pre-existing files holds
  kTornTail,         ///< the prefix's final write is cut at a seeded offset
};

constexpr CrashPolicy kAllPolicies[] = {
    CrashPolicy::kLiteral, CrashPolicy::kDropUnsyncedData,
    CrashPolicy::kDropUnsyncedMeta, CrashPolicy::kTornTail};

const char* policy_name(CrashPolicy p) {
  switch (p) {
    case CrashPolicy::kLiteral: return "literal";
    case CrashPolicy::kDropUnsyncedData: return "drop-unsynced-data";
    case CrashPolicy::kDropUnsyncedMeta: return "drop-unsynced-meta";
    case CrashPolicy::kTornTail: return "torn-tail";
  }
  return "?";
}

struct SimFile {
  std::vector<std::uint8_t> content;
  std::optional<std::vector<std::uint8_t>> synced;  ///< content at last fsync
};

/// Replays ops[0, prefix) into a map of surviving files under `policy`.
/// Paths are kept verbatim; the caller remaps them into the replay dir.
std::map<std::string, std::vector<std::uint8_t>> simulate_crash(
    const std::vector<io::WriteOp>& ops, std::size_t prefix, CrashPolicy policy,
    std::uint64_t seed) {
  using Kind = io::WriteOp::Kind;

  if (policy == CrashPolicy::kDropUnsyncedMeta) {
    // Everything before the last directory fsync is fully durable; after
    // it, only data writes into files that already had dir entries land.
    std::size_t durable = 0;
    for (std::size_t i = 0; i < prefix; ++i) {
      if (ops[i].kind == Kind::kSyncDir) durable = i + 1;
    }
    std::map<std::string, std::vector<std::uint8_t>> files;
    for (std::size_t i = 0; i < durable; ++i) {
      const auto& op = ops[i];
      switch (op.kind) {
        case Kind::kWriteFile: files[op.path] = op.data; break;
        case Kind::kRename: {
          auto it = files.find(op.path);
          if (it != files.end()) {
            files[op.path2] = std::move(it->second);
            files.erase(it);
          }
          break;
        }
        case Kind::kUnlink: files.erase(op.path); break;
        default: break;
      }
    }
    for (std::size_t i = durable; i < prefix; ++i) {
      const auto& op = ops[i];
      if (op.kind == Kind::kWriteFile && files.count(op.path) != 0) {
        files[op.path] = op.data;  // overwrite of an existing inode
      }
      // creations, renames and unlinks were never journaled: lost.
    }
    return files;
  }

  std::map<std::string, SimFile> fs;
  for (std::size_t i = 0; i < prefix; ++i) {
    const auto& op = ops[i];
    switch (op.kind) {
      case Kind::kWriteFile: {
        auto& f = fs[op.path];
        f.content = op.data;
        f.synced.reset();  // O_TRUNC rewrite: prior synced bytes are gone
        if (policy == CrashPolicy::kTornTail && i + 1 == prefix) {
          // The crash interrupts this very write: keep a seeded prefix.
          std::uint64_t state = seed ^ (0x9E3779B97F4A7C15ull * (i + 1));
          const std::uint64_t cut =
              op.data.empty() ? 0 : splitmix64(state) % (op.data.size() + 1);
          f.content.resize(static_cast<std::size_t>(cut));
        }
        break;
      }
      case Kind::kSyncFile: {
        auto it = fs.find(op.path);
        if (it != fs.end()) it->second.synced = it->second.content;
        break;
      }
      case Kind::kRename: {
        auto it = fs.find(op.path);
        if (it != fs.end()) {
          fs[op.path2] = std::move(it->second);
          fs.erase(it);
        }
        break;
      }
      case Kind::kUnlink: fs.erase(op.path); break;
      case Kind::kSyncDir: break;
    }
  }
  std::map<std::string, std::vector<std::uint8_t>> files;
  for (auto& [path, f] : fs) {
    if (policy == CrashPolicy::kDropUnsyncedData) {
      // The dir entry exists but un-fsynced data never hit the platter.
      files[path] = f.synced ? *f.synced : std::vector<std::uint8_t>{};
    } else {
      files[path] = std::move(f.content);
    }
  }
  return files;
}

/// Writes a simulated crash image into `replay_dir`, remapping the
/// workload-dir prefix of every traced path.
void materialize(const std::map<std::string, std::vector<std::uint8_t>>& files,
                 const std::string& work_dir, const std::string& replay_dir) {
  std::filesystem::remove_all(replay_dir);
  std::filesystem::create_directories(replay_dir);
  for (const auto& [path, data] : files) {
    ASSERT_EQ(path.rfind(work_dir, 0), 0u) << "trace path outside workload dir";
    const std::string out = replay_dir + path.substr(work_dir.size());
    auto written = io::real_env().write_file(out, data.data(), data.size());
    ASSERT_TRUE(written.has_value()) << written.error().to_string();
  }
}

/// The recovery invariants every crash image must satisfy.
void check_recovery(const std::string& dir, const std::set<std::uint32_t>& commits,
                    std::uint32_t total_docs, const std::string& context) {
  SCOPED_TRACE(context);

  // 1. The manifest is valid or absent — never corrupt: the CRC plus the
  //    write-fsync-rename-dirfsync protocol rule out torn commits.
  auto m = manifest_read(dir);
  if (!m.has_value()) {
    ASSERT_EQ(m.error().code, ErrorCode::kNotFound) << m.error().to_string();
  }

  // 2. Recovery succeeds and lands exactly on some committed state.
  auto reopened = IndexWriter::open(dir, tiny_writer_opts());
  ASSERT_TRUE(reopened.has_value()) << reopened.error().to_string();
  auto& w = reopened.value();
  const std::uint32_t committed = w.committed_docs();
  EXPECT_TRUE(commits.count(committed) != 0)
      << committed << " docs is not a commit point";

  // 3. Committed docs answer queries; uncommitted ones are gone.
  const auto snap = w.snapshot();
  EXPECT_EQ(snap->doc_count(), committed);
  for (std::uint32_t i = 0; i < total_docs; ++i) {
    const auto hit = snap->lookup("uniq" + std::to_string(i));
    if (i < committed) {
      ASSERT_TRUE(hit.has_value()) << "committed doc " << i << " lost";
      ASSERT_EQ(hit->doc_ids.size(), 1u);
      EXPECT_EQ(hit->doc_ids[0], i);
    } else {
      EXPECT_FALSE(hit.has_value()) << "uncommitted doc " << i << " visible";
    }
  }

  // 4. Reopen leaves no *.tmp and no file the manifest does not name.
  const auto manifest = w.manifest();
  std::set<std::uint64_t> committed_ids;
  for (const auto& e : manifest.entries) committed_ids.insert(e.segment_id);
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    const std::string name = entry.path().filename().string();
    EXPECT_EQ(name.find(".tmp"), std::string::npos) << name << " survived reopen";
    if (name.rfind("seg-", 0) == 0) {
      const std::uint64_t id = std::strtoull(name.c_str() + 4, nullptr, 10);
      EXPECT_TRUE(committed_ids.count(id) != 0) << "orphan " << name;
    }
  }

  // 5. Recovery is idempotent: a second open serves the same state.
  auto again = IndexWriter::open(dir, tiny_writer_opts());
  ASSERT_TRUE(again.has_value()) << again.error().to_string();
  EXPECT_EQ(again.value().committed_docs(), committed);
  EXPECT_EQ(again.value().snapshot()->doc_count(), committed);
}

// ------------------------------------------------------------ the harness

// Flushes interleaved with compaction commits — the "flush racing
// compaction" shape — traced, then every prefix replayed under every
// policy. ~10 commits keep the prefix count (x4 policies) test-sized.
TEST(CrashConsistency, EveryTracePrefixRecovers) {
  const std::uint64_t seed = crash_seed();
  std::printf("crash harness seed: %llu (set HETINDEX_CRASH_SEED to replay)\n",
              static_cast<unsigned long long>(seed));

  TempDir work("work");
  TempDir replay("replay");
  std::set<std::uint32_t> commits = {0};
  std::uint32_t total_docs = 0;
  std::vector<io::WriteOp> trace;
  {
    io::FaultEnv tracer;  // no faults: pure trace capture
    io::ScopedEnv scoped(tracer);
    auto writer = IndexWriter::open(work.path(), tiny_writer_opts());
    ASSERT_TRUE(writer.has_value());
    auto& w = writer.value();
    for (int round = 0; round < 3; ++round) {
      for (int f = 0; f < 3; ++f) {
        w.add_document("u://" + std::to_string(total_docs), doc_body(total_docs));
        ++total_docs;
        w.add_document("u://" + std::to_string(total_docs), doc_body(total_docs));
        ++total_docs;
        ASSERT_TRUE(w.flush().has_value());
        commits.insert(w.committed_docs());
      }
      // Merge commits interleave with the flush commits in the trace.
      ASSERT_TRUE(w.compact_now().has_value());
    }
    trace = tracer.trace();
  }
  ASSERT_GT(trace.size(), 50u);

  for (std::size_t prefix = 0; prefix <= trace.size(); ++prefix) {
    for (const CrashPolicy policy : kAllPolicies) {
      const auto files = simulate_crash(trace, prefix, policy, seed);
      materialize(files, work.path(), replay.path());
      check_recovery(replay.path(), commits, total_docs,
                     "prefix " + std::to_string(prefix) + "/" +
                         std::to_string(trace.size()) + ", policy " +
                         policy_name(policy) + ", seed " + std::to_string(seed));
      if (HasFatalFailure()) return;
    }
  }
}

// Deletes and updates interleaved with flushes and reclaim compaction:
// every commit (flush, tombstone generation, compaction splice) is a
// recovery point, and every trace prefix under every policy must land on
// exactly one of them — a committed delete never resurrects, a committed
// tombstone is never lost, and a tombstone for an id the crash un-assigned
// (a deleted memtable doc that never flushed) is truncated, not inherited
// by the reassigned id.
TEST(CrashConsistency, DeleteAndUpdateTracePrefixesRecover) {
  const std::uint64_t seed = crash_seed();
  std::printf("crash harness seed: %llu (set HETINDEX_CRASH_SEED to replay)\n",
              static_cast<unsigned long long>(seed));

  TempDir work("delwork");
  TempDir replay("delreplay");
  /// One committed state: the doc-id watermark plus the tombstoned ids
  /// below it (bits above the watermark are truncated by recovery).
  struct State {
    std::uint32_t docs;
    std::set<std::uint32_t> deleted;
  };
  std::vector<State> states;
  std::set<std::uint32_t> deleted;  // in-memory mirror, memtable ids included
  std::uint32_t total_docs = 0;
  std::vector<io::WriteOp> trace;
  {
    io::FaultEnv tracer;  // no faults: pure trace capture
    io::ScopedEnv scoped(tracer);
    auto writer = IndexWriter::open(work.path(), tiny_writer_opts());
    ASSERT_TRUE(writer.has_value());
    auto& w = writer.value();
    const auto record = [&] {
      State s{w.committed_docs(), {}};
      for (const auto id : deleted) {
        if (id < s.docs) s.deleted.insert(id);
      }
      states.push_back(std::move(s));
    };
    const auto add = [&] {
      EXPECT_EQ(w.add_document("u://" + std::to_string(total_docs), doc_body(total_docs)),
                total_docs);
      ++total_docs;
    };
    const auto remove = [&](std::uint32_t id) {
      ASSERT_TRUE(w.delete_document(id).has_value());
      deleted.insert(id);
      record();
    };
    record();                                    // the empty initial manifest
    add();                                       // 0
    add();                                       // 1
    ASSERT_TRUE(w.flush().has_value());
    record();
    remove(0);                                   // delete a flushed doc
    add();                                       // 2
    add();                                       // 3
    remove(3);                                   // delete a memtable-only doc
    ASSERT_TRUE(w.flush().has_value());
    record();
    add();                                       // 4
    const auto updated = w.update_document(1, "u://1v2", doc_body(total_docs));
    ASSERT_TRUE(updated.has_value());            // update = delete 1 + re-add
    ASSERT_EQ(updated.value(), total_docs);
    deleted.insert(1);
    ++total_docs;                                // 5 = the re-added revision
    record();
    ASSERT_TRUE(w.flush().has_value());
    record();
    ASSERT_TRUE(w.compact_now().has_value());    // physical reclaim rewrites
    record();
    add();                                       // 6
    remove(2);
    ASSERT_TRUE(w.flush().has_value());
    record();
    ASSERT_TRUE(w.compact_now().has_value());
    record();
    trace = tracer.trace();
  }
  ASSERT_GT(trace.size(), 50u);

  for (std::size_t prefix = 0; prefix <= trace.size(); ++prefix) {
    for (const CrashPolicy policy : kAllPolicies) {
      SCOPED_TRACE("prefix " + std::to_string(prefix) + "/" +
                   std::to_string(trace.size()) + ", policy " +
                   std::string(policy_name(policy)) + ", seed " +
                   std::to_string(seed));
      const auto files = simulate_crash(trace, prefix, policy, seed);
      materialize(files, work.path(), replay.path());

      // The manifest parses or is absent — never corrupt.
      auto m = manifest_read(replay.path());
      if (!m.has_value()) {
        ASSERT_EQ(m.error().code, ErrorCode::kNotFound) << m.error().to_string();
      }

      // Recovery succeeds and the {docs, tombstones} pair is exactly one
      // committed state: nothing resurrected, nothing lost.
      auto reopened = IndexWriter::open(replay.path(), tiny_writer_opts());
      ASSERT_TRUE(reopened.has_value()) << reopened.error().to_string();
      auto& w = reopened.value();
      const std::uint32_t committed = w.committed_docs();
      const auto snap = w.snapshot();
      std::set<std::uint32_t> recovered;
      for (std::uint32_t id = 0; id < committed; ++id) {
        if (snap->is_deleted(id)) recovered.insert(id);
      }
      bool matched = false;
      for (const auto& s : states) {
        matched = matched || (s.docs == committed && s.deleted == recovered);
      }
      EXPECT_TRUE(matched) << committed << " docs with " << recovered.size()
                           << " tombstones is not a committed state";
      EXPECT_EQ(snap->deleted_docs(), recovered.size());
      EXPECT_EQ(snap->doc_count(), committed - recovered.size());

      // Alive committed docs answer; uncommitted ids are gone entirely.
      for (std::uint32_t id = 0; id < total_docs; ++id) {
        const auto hit = snap->lookup("uniq" + std::to_string(id));
        if (id < committed && recovered.count(id) == 0) {
          ASSERT_TRUE(hit.has_value()) << "committed doc " << id << " lost";
          EXPECT_EQ(hit->doc_ids, (std::vector<std::uint32_t>{id}));
        } else if (id >= committed) {
          EXPECT_FALSE(hit.has_value()) << "uncommitted doc " << id << " visible";
        }
        // A tombstoned doc may still sit in a not-yet-reclaimed segment;
        // is_deleted() already proves the search layer filters it.
      }

      // No *.tmp, orphan segment, or orphan tombstone survives reopen.
      const auto manifest = w.manifest();
      std::set<std::uint64_t> committed_ids;
      for (const auto& e : manifest.entries) committed_ids.insert(e.segment_id);
      for (const auto& entry : std::filesystem::directory_iterator(replay.path())) {
        const std::string name = entry.path().filename().string();
        EXPECT_EQ(name.find(".tmp"), std::string::npos) << name << " survived reopen";
        if (name.rfind("seg-", 0) == 0) {
          const std::uint64_t id = std::strtoull(name.c_str() + 4, nullptr, 10);
          EXPECT_TRUE(committed_ids.count(id) != 0) << "orphan " << name;
        }
        if (name.rfind("tomb-", 0) == 0) {
          const std::uint64_t gen = std::strtoull(name.c_str() + 5, nullptr, 10);
          EXPECT_EQ(gen, manifest.tombstone_gen) << "orphan " << name;
        }
      }

      // Recovery is idempotent, tombstones included.
      auto again = IndexWriter::open(replay.path(), tiny_writer_opts());
      ASSERT_TRUE(again.has_value()) << again.error().to_string();
      EXPECT_EQ(again.value().committed_docs(), committed);
      EXPECT_EQ(again.value().deleted_docs(), recovered.size());
      if (HasFatalFailure()) return;
    }
  }
}

// A committed tombstone generation whose sidecar is unreadable is a
// structured corruption report, not a silent empty delete set.
TEST(Durability, CorruptTombstoneSidecarReportsCorrupt) {
  TempDir dir("tombcorrupt");
  std::uint64_t gen = 0;
  {
    auto writer = IndexWriter::open(dir.path(), tiny_writer_opts());
    ASSERT_TRUE(writer.has_value());
    auto& w = writer.value();
    w.add_document("u://0", doc_body(0));
    ASSERT_TRUE(w.flush().has_value());
    ASSERT_TRUE(w.delete_document(0).has_value());
    gen = w.manifest().tombstone_gen;
    ASSERT_GT(gen, 0u);
  }
  auto bytes = read_file(tombstone_path(dir.path(), gen));
  bytes[bytes.size() / 2] ^= 0x20;  // flip a bit inside the CRC'd payload
  write_file(tombstone_path(dir.path(), gen), bytes);

  const auto reopened = IndexWriter::open(dir.path(), tiny_writer_opts());
  ASSERT_FALSE(reopened.has_value());
  EXPECT_EQ(reopened.error().code, ErrorCode::kCorrupt);
}

// ENOSPC while writing the tombstone sidecar: the delete must fail
// cleanly — no new generation on disk, the previous delete set and the
// committed docs untouched — and the retried delete must commit.
TEST(Durability, EnospcMidDeleteKeepsDeleteSetIntact) {
  TempDir dir("enospc_delete");
  io::FaultEnv env;
  io::ScopedEnv scoped(env);
  auto writer = IndexWriter::open(dir.path(), tiny_writer_opts());
  ASSERT_TRUE(writer.has_value());
  auto& w = writer.value();
  w.add_document("u://0", doc_body(0));
  w.add_document("u://1", doc_body(1));
  ASSERT_TRUE(w.flush().has_value());
  ASSERT_TRUE(w.delete_document(0).has_value());
  const std::uint64_t gen_before = w.manifest().tombstone_gen;

  for (std::uint64_t fail_at = 1; fail_at <= 2; ++fail_at) {
    io::FaultPlan plan;
    plan.fail_write_at = fail_at;  // 1 = tombstone sidecar, 2 = manifest tmp
    env.set_plan(plan);
    auto failed = w.delete_document(1);
    env.set_plan({});
    ASSERT_FALSE(failed.has_value()) << "write " << fail_at << " did not fail";
    EXPECT_EQ(failed.error().code, ErrorCode::kIo);
    EXPECT_EQ(w.deleted_docs(), 1u);
    EXPECT_EQ(w.manifest().tombstone_gen, gen_before);
    EXPECT_FALSE(w.snapshot()->is_deleted(1));
    EXPECT_GE(w.metrics().snapshot().counter("live_delete_failures_total"), fail_at);
    // The torn generation file was removed; gen_before still serves.
    EXPECT_FALSE(io::real_env().file_exists(
        tombstone_path(dir.path(), w.manifest().tombstone_gen + 1)));
  }
  ASSERT_TRUE(w.delete_document(1).has_value());
  EXPECT_EQ(w.deleted_docs(), 2u);
  EXPECT_TRUE(w.snapshot()->is_deleted(1));
}

// ------------------------------------------------- commit-protocol pinning

// Regression for the manifest durability bug: the commit must fsync
// MANIFEST.tmp BEFORE the rename and fsync the directory AFTER it. The
// pre-fix code renamed an unsynced tmp and never synced the directory —
// this test fails against it on the trace order alone.
TEST(Durability, ManifestCommitSyncsBeforeRenameAndDirAfter) {
  TempDir dir("commit_order");
  io::FaultEnv tracer;
  io::ScopedEnv scoped(tracer);
  auto writer = IndexWriter::open(dir.path(), tiny_writer_opts());
  ASSERT_TRUE(writer.has_value());
  writer.value().add_document("u://0", doc_body(0));
  ASSERT_TRUE(writer.value().flush().has_value());

  const auto trace = tracer.trace();
  const std::string manifest = manifest_path(dir.path());
  std::size_t tmp_sync = trace.size(), rename = trace.size(), dir_sync = trace.size();
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const auto& op = trace[i];
    if (op.kind == io::WriteOp::Kind::kSyncFile && op.path == manifest + ".tmp") {
      tmp_sync = i;
    }
    if (op.kind == io::WriteOp::Kind::kRename && op.path2 == manifest) rename = i;
    if (op.kind == io::WriteOp::Kind::kSyncDir && rename < trace.size() &&
        dir_sync == trace.size()) {
      dir_sync = i;
    }
  }
  ASSERT_LT(rename, trace.size()) << "no manifest rename traced";
  EXPECT_LT(tmp_sync, rename) << "MANIFEST.tmp not fsynced before rename";
  EXPECT_GT(dir_sync, rename) << "directory not fsynced after rename";
  ASSERT_LT(dir_sync, trace.size()) << "directory never fsynced";
}

// Regression: a failed manifest write (ENOSPC) must leave no MANIFEST.tmp
// behind, report a structured kIo, and keep the previous commit intact.
TEST(Durability, ManifestWriteEnospcLeavesNoTmp) {
  TempDir dir("manifest_enospc");
  Manifest before;
  before.next_segment_id = 7;
  before.next_doc_id = 3;
  ASSERT_TRUE(manifest_write(dir.path(), before).has_value());

  io::FaultPlan plan;
  plan.fail_write_at = 1;  // the tmp write tears, then the device is full
  io::FaultEnv faulty(plan);
  io::ScopedEnv scoped(faulty);
  Manifest next = before;
  next.next_doc_id = 99;
  auto committed = manifest_write(dir.path(), next);
  ASSERT_FALSE(committed.has_value());
  EXPECT_EQ(committed.error().code, ErrorCode::kIo);
  EXPECT_FALSE(io::real_env().file_exists(manifest_path(dir.path()) + ".tmp"));
  auto survived = manifest_read(dir.path());
  ASSERT_TRUE(survived.has_value());
  EXPECT_EQ(survived.value().next_doc_id, 3u);
}

// Regression for the pread fallback bug: EINTR must be retried (bounded,
// counted in io_retries_total) instead of aborting, and the error path
// must not double-close the descriptor (the pre-fix code closed fd twice;
// under ASan/fd-sanitizers that is a hard failure). deny_mmap forces the
// fallback; short preads exercise the full-read loop.
TEST(MmapFallback, PreadRetriesEintrAndClosesOnce) {
  TempDir dir("eintr");
  const std::string path = dir.path() + "/blob.bin";
  std::vector<std::uint8_t> payload(4096);
  for (std::size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<std::uint8_t>(i * 131u);
  }
  ASSERT_TRUE(io::real_env().write_file(path, payload.data(), payload.size()).has_value());

  const std::uint64_t retries_before =
      io::io_metrics().snapshot().counter("io_retries_total");
  io::FaultPlan plan;
  plan.deny_mmap = true;
  plan.pread_eintr_every = 2;   // every other pread is interrupted
  plan.short_pread_bytes = 97;  // and successful ones are short
  io::FaultEnv faulty(plan);
  io::ScopedEnv scoped(faulty);

  auto file = MmapFile::try_open(path);
  ASSERT_TRUE(file.has_value()) << file.error().to_string();
  ASSERT_EQ(file.value().size(), payload.size());
  EXPECT_EQ(std::memcmp(file.value().data(), payload.data(), payload.size()), 0);
  EXPECT_GT(io::io_metrics().snapshot().counter("io_retries_total"), retries_before);

  // Missing files still report kNotFound through the fallback path.
  auto missing = MmapFile::try_open(dir.path() + "/nope.bin");
  ASSERT_FALSE(missing.has_value());
  EXPECT_EQ(missing.error().code, ErrorCode::kNotFound);
}

// ENOSPC mid-flush, at each write the flush issues (segment, sidecar, doc
// map, manifest tmp): the writer must stay usable, the buffer and the
// committed snapshot untouched, no partial files left, and the retried
// flush must commit everything.
TEST(Durability, EnospcMidFlushKeepsWriterUsable) {
  TempDir dir("enospc_flush");
  io::FaultEnv env;
  io::ScopedEnv scoped(env);
  auto writer = IndexWriter::open(dir.path(), tiny_writer_opts());
  ASSERT_TRUE(writer.has_value());
  auto& w = writer.value();
  w.add_document("u://0", doc_body(0));
  w.add_document("u://1", doc_body(1));
  ASSERT_TRUE(w.flush().has_value());

  std::uint32_t next_doc = 2;
  for (std::uint64_t fail_at = 1; fail_at <= 4; ++fail_at) {
    w.add_document("u://" + std::to_string(next_doc), doc_body(next_doc));
    ++next_doc;
    const std::uint32_t committed_before = w.committed_docs();
    const auto snapshot_before = w.snapshot();

    io::FaultPlan plan;
    plan.seed = fail_at;
    plan.fail_write_at = fail_at;  // 1=segment, 2=sidecar, 3=docmap, 4=manifest
    env.set_plan(plan);
    auto failed = w.flush();
    env.set_plan({});
    ASSERT_FALSE(failed.has_value()) << "write " << fail_at << " did not fail";
    EXPECT_EQ(failed.error().code, ErrorCode::kIo);

    // Buffer intact, committed state untouched, snapshot still serves.
    EXPECT_EQ(w.buffered_docs(), 1u);
    EXPECT_EQ(w.committed_docs(), committed_before);
    EXPECT_EQ(w.snapshot()->doc_count(), snapshot_before->doc_count());
    EXPECT_EQ(w.metrics().snapshot().counter("live_flush_failures_total"), fail_at);
    // No partial files: everything on disk is named by the manifest.
    std::set<std::uint64_t> ids;
    for (const auto& e : w.manifest().entries) ids.insert(e.segment_id);
    for (const auto& entry : std::filesystem::directory_iterator(dir.path())) {
      const std::string name = entry.path().filename().string();
      EXPECT_EQ(name.find(".tmp"), std::string::npos) << name;
      if (name.rfind("seg-", 0) == 0) {
        EXPECT_TRUE(ids.count(std::strtoull(name.c_str() + 4, nullptr, 10)) != 0)
            << "partial " << name << " after failed write " << fail_at;
      }
    }

    // The fault cleared: the same buffer commits.
    auto retried = w.flush();
    ASSERT_TRUE(retried.has_value()) << retried.error().to_string();
    EXPECT_EQ(w.committed_docs(), committed_before + 1);
  }
  for (std::uint32_t i = 0; i < next_doc; ++i) {
    ASSERT_TRUE(w.snapshot()->lookup("uniq" + std::to_string(i)).has_value()) << i;
  }
}

// fsyncgate pinning: a failed fsync must fail the commit — never be
// swallowed — and the rewrite-whole-file retry discipline means a later
// flush (fault cleared) commits cleanly.
TEST(Durability, FsyncFailureFailsCommit) {
  TempDir dir("fsync_fail");
  io::FaultEnv env;
  io::ScopedEnv scoped(env);
  auto writer = IndexWriter::open(dir.path(), tiny_writer_opts());
  ASSERT_TRUE(writer.has_value());
  auto& w = writer.value();
  w.add_document("u://0", doc_body(0));

  const std::uint64_t fsync_failures_before =
      io::io_metrics().snapshot().counter("fsync_failures_total");
  io::FaultPlan plan;
  plan.fail_sync_at = 1;  // the segment file's fsync reports EIO
  env.set_plan(plan);
  auto failed = w.flush();
  env.set_plan({});
  ASSERT_FALSE(failed.has_value());
  EXPECT_EQ(failed.error().code, ErrorCode::kIo);
  EXPECT_GT(io::io_metrics().snapshot().counter("fsync_failures_total"),
            fsync_failures_before);
  EXPECT_EQ(w.committed_docs(), 0u);
  EXPECT_EQ(w.buffered_docs(), 1u);

  auto retried = w.flush();
  ASSERT_TRUE(retried.has_value()) << retried.error().to_string();
  EXPECT_EQ(w.committed_docs(), 1u);
  EXPECT_TRUE(w.snapshot()->lookup("uniq0").has_value());
}

// Transient (EINTR-class) write faults are absorbed by durable_write_file's
// bounded whole-file retry: the flush succeeds and the retries are counted.
TEST(Durability, TransientWriteFaultsRetried) {
  TempDir dir("transient");
  io::FaultPlan plan;
  plan.transient_write_every = 2;  // every second write fails retryably
  io::FaultEnv env(plan);
  io::ScopedEnv scoped(env);

  const std::uint64_t retries_before =
      io::io_metrics().snapshot().counter("io_retries_total");
  auto writer = IndexWriter::open(dir.path(), tiny_writer_opts());
  ASSERT_TRUE(writer.has_value());
  auto& w = writer.value();
  w.add_document("u://0", doc_body(0));
  auto flushed = w.flush();
  ASSERT_TRUE(flushed.has_value()) << flushed.error().to_string();
  EXPECT_GT(io::io_metrics().snapshot().counter("io_retries_total"), retries_before);
  EXPECT_EQ(w.committed_docs(), 1u);
  EXPECT_TRUE(w.snapshot()->lookup("uniq0").has_value());
}

// Recovery drops a stale MANIFEST.tmp and orphan segment files, counting
// them in recovery_dropped_files_total.
TEST(Durability, RecoveryDropsStraysAndCountsThem) {
  TempDir dir("recovery_metric");
  {
    auto writer = IndexWriter::open(dir.path(), tiny_writer_opts());
    ASSERT_TRUE(writer.has_value());
    writer.value().add_document("u://0", doc_body(0));
    ASSERT_TRUE(writer.value().flush().has_value());
  }
  const std::vector<std::uint8_t> junk = {1, 2, 3};
  ASSERT_TRUE(io::real_env()
                  .write_file(manifest_path(dir.path()) + ".tmp", junk.data(), junk.size())
                  .has_value());
  ASSERT_TRUE(io::real_env()
                  .write_file(live_segment_path(dir.path(), 99), junk.data(), junk.size())
                  .has_value());

  auto reopened = IndexWriter::open(dir.path(), tiny_writer_opts());
  ASSERT_TRUE(reopened.has_value());
  EXPECT_EQ(reopened.value().metrics().snapshot().counter("recovery_dropped_files_total"),
            2u);
  EXPECT_FALSE(io::real_env().file_exists(manifest_path(dir.path()) + ".tmp"));
  EXPECT_FALSE(io::real_env().file_exists(live_segment_path(dir.path(), 99)));
  EXPECT_TRUE(reopened.value().snapshot()->lookup("uniq0").has_value());
}

// ENOSPC during a compaction merge: the committed set and the served
// snapshot are untouched, the failure is counted, and the retried
// compaction (fault cleared) folds the segments.
TEST(Durability, EnospcMidCompactionKeepsCommittedSet) {
  TempDir dir("enospc_compact");
  io::FaultEnv env;
  io::ScopedEnv scoped(env);
  auto writer = IndexWriter::open(dir.path(), tiny_writer_opts());
  ASSERT_TRUE(writer.has_value());
  auto& w = writer.value();
  for (std::uint32_t i = 0; i < 4; ++i) {
    w.add_document("u://" + std::to_string(i), doc_body(i));
    ASSERT_TRUE(w.flush().has_value());
  }
  const std::size_t segments_before = w.snapshot()->segment_count();
  ASSERT_GE(segments_before, 2u);

  io::FaultPlan plan;
  plan.fail_write_at = 1;  // the merged segment's write tears
  env.set_plan(plan);
  auto failed = w.compact_now();
  env.set_plan({});
  ASSERT_FALSE(failed.has_value());
  EXPECT_EQ(failed.error().code, ErrorCode::kIo);
  EXPECT_GE(w.metrics().snapshot().counter("compaction_failures_total"), 1u);
  EXPECT_EQ(w.snapshot()->segment_count(), segments_before);
  EXPECT_EQ(w.committed_docs(), 4u);

  auto retried = w.compact_now();
  ASSERT_TRUE(retried.has_value()) << retried.error().to_string();
  EXPECT_LT(w.snapshot()->segment_count(), segments_before);
  for (std::uint32_t i = 0; i < 4; ++i) {
    ASSERT_TRUE(w.snapshot()->lookup("uniq" + std::to_string(i)).has_value()) << i;
  }
}

}  // namespace
}  // namespace hetindex
