// Tests for the text substrate: tokenizer, Porter stemmer, stop words and
// HTML stripping (parser Steps 2–4 of Fig. 3).

#include <gtest/gtest.h>

#include "text/html_strip.hpp"
#include "text/porter.hpp"
#include "text/stopwords.hpp"
#include "text/tokenizer.hpp"

namespace hetindex {
namespace {

TEST(Tokenizer, SplitsOnNonAlnum) {
  EXPECT_EQ(tokenize_to_vector("Hello, world! foo-bar_baz"),
            (std::vector<std::string>{"hello", "world", "foo", "bar", "baz"}));
}

TEST(Tokenizer, Lowercases) {
  EXPECT_EQ(tokenize_to_vector("CamelCase UPPER"),
            (std::vector<std::string>{"camelcase", "upper"}));
}

TEST(Tokenizer, KeepsDigitsAndMixedTokens) {
  EXPECT_EQ(tokenize_to_vector("3d 0195 954"),
            (std::vector<std::string>{"3d", "0195", "954"}));
}

TEST(Tokenizer, PassesNonAsciiBytesThrough) {
  const auto tokens = tokenize_to_vector("caf\xC3\xA9 time");
  ASSERT_EQ(tokens.size(), 2u);
  EXPECT_EQ(tokens[0], "caf\xC3\xA9");
}

TEST(Tokenizer, EmptyAndSeparatorOnlyInputs) {
  EXPECT_TRUE(tokenize_to_vector("").empty());
  EXPECT_TRUE(tokenize_to_vector("  .,;!?  \n\t").empty());
}

TEST(Tokenizer, TruncatesOverlongTokens) {
  const std::string longtok(600, 'a');
  const auto tokens = tokenize_to_vector(longtok + " next");
  ASSERT_EQ(tokens.size(), 2u);
  EXPECT_EQ(tokens[0].size(), kMaxTokenBytes);
  EXPECT_EQ(tokens[1], "next");
}

TEST(Tokenizer, TokenAtEndOfInput) {
  EXPECT_EQ(tokenize_to_vector("trailing token"),
            (std::vector<std::string>{"trailing", "token"}));
}

struct StemCase {
  const char* in;
  const char* out;
};

class PorterVector : public ::testing::TestWithParam<StemCase> {};

TEST_P(PorterVector, MatchesReferenceBehaviour) {
  EXPECT_EQ(porter_stem(GetParam().in), GetParam().out)
      << "input: " << GetParam().in;
}

INSTANTIATE_TEST_SUITE_P(
    ClassicVectors, PorterVector,
    ::testing::Values(
        // Step 1a
        StemCase{"caresses", "caress"}, StemCase{"ponies", "poni"}, StemCase{"ties", "ti"},
        StemCase{"caress", "caress"}, StemCase{"cats", "cat"},
        // Step 1b
        StemCase{"feed", "feed"}, StemCase{"agreed", "agre"},
        StemCase{"plastered", "plaster"}, StemCase{"motoring", "motor"},
        StemCase{"hopping", "hop"}, StemCase{"falling", "fall"},
        StemCase{"hissing", "hiss"}, StemCase{"filing", "file"},
        StemCase{"conflated", "conflat"},
        // Step 1c
        StemCase{"happy", "happi"}, StemCase{"sky", "sky"},
        // Step 2
        StemCase{"relational", "relat"}, StemCase{"conditional", "condit"},
        StemCase{"valenci", "valenc"}, StemCase{"hesitanci", "hesit"},
        StemCase{"digitizer", "digit"}, StemCase{"operator", "oper"},
        StemCase{"feudalism", "feudal"}, StemCase{"decisiveness", "decis"},
        StemCase{"hopefulness", "hope"}, StemCase{"formaliti", "formal"},
        // Step 3
        StemCase{"triplicate", "triplic"}, StemCase{"formative", "form"},
        StemCase{"formalize", "formal"}, StemCase{"electriciti", "electr"},
        StemCase{"electrical", "electr"}, StemCase{"hopeful", "hope"},
        StemCase{"goodness", "good"},
        // Step 4
        StemCase{"revival", "reviv"}, StemCase{"allowance", "allow"},
        StemCase{"inference", "infer"}, StemCase{"airliner", "airlin"},
        StemCase{"adjustable", "adjust"}, StemCase{"defensible", "defens"},
        StemCase{"irritant", "irrit"}, StemCase{"replacement", "replac"},
        StemCase{"adjustment", "adjust"}, StemCase{"dependent", "depend"},
        StemCase{"adoption", "adopt"}, StemCase{"activate", "activ"},
        StemCase{"angulariti", "angular"}, StemCase{"homologous", "homolog"},
        StemCase{"effective", "effect"}, StemCase{"bowdlerize", "bowdler"},
        // Step 5
        StemCase{"probate", "probat"}, StemCase{"rate", "rate"},
        StemCase{"controll", "control"}, StemCase{"roll", "roll"},
        // Multi-step chains
        StemCase{"generalizations", "gener"}, StemCase{"oscillators", "oscil"}));

TEST(Porter, LeavesShortWordsAlone) {
  EXPECT_EQ(porter_stem("a"), "a");
  EXPECT_EQ(porter_stem("at"), "at");
  EXPECT_EQ(porter_stem("as"), "as");
}

TEST(Porter, LeavesNonAlphaWordsAlone) {
  EXPECT_EQ(porter_stem("3d"), "3d");
  EXPECT_EQ(porter_stem("0195"), "0195");
  EXPECT_EQ(porter_stem("caf\xC3\xA9"), "caf\xC3\xA9");
}

TEST(Porter, NeverLengthensOutput) {
  // The inverted-file format relies on stemmed tokens fitting the original
  // 255-byte bound.
  for (const char* w : {"parallelization", "parallelism", "parallelize", "running",
                        "connectivity", "internationalization"}) {
    EXPECT_LE(porter_stem(w).size(), std::string_view(w).size()) << w;
  }
}

TEST(Porter, PaperExampleParallelFamily) {
  // §II: "parallelize, parallelization, parallelism are all based on
  // parallel" — all three must map to the same stem.
  const auto a = porter_stem("parallelize");
  const auto b = porter_stem("parallelization");
  const auto c = porter_stem("parallelism");
  EXPECT_EQ(a, b);
  EXPECT_EQ(b, c);
}

TEST(Porter, InplaceMatchesStringApi) {
  for (const char* w : {"caresses", "hopping", "generalizations", "sky"}) {
    std::string buf(w);
    buf.push_back('\0');
    const std::size_t n = porter_stem_inplace(buf.data(), std::string_view(w).size());
    EXPECT_EQ(std::string_view(buf.data(), n), porter_stem(w));
  }
}

TEST(StopWords, DefaultListContainsPaperExamples) {
  const auto& sw = default_stopwords();
  // §II: common terms "such as 'the', 'to', 'and'".
  EXPECT_TRUE(sw.contains("the"));
  EXPECT_TRUE(sw.contains("to"));
  EXPECT_TRUE(sw.contains("and"));
  EXPECT_FALSE(sw.contains("parallel"));
  EXPECT_FALSE(sw.contains("indexer"));
}

TEST(StopWords, ContainsStemmedForms) {
  // Fig. 3 removes stop words after stemming, so the set must cover the
  // stemmed surface of every stop word.
  const auto& sw = default_stopwords();
  EXPECT_TRUE(sw.contains(porter_stem("above")));   // "abov"
  EXPECT_TRUE(sw.contains(porter_stem("being")));
  EXPECT_TRUE(sw.contains(porter_stem("ourselves")));
  EXPECT_TRUE(sw.contains(porter_stem("having")));
}

TEST(StopWords, CustomList) {
  const StopWords sw(std::vector<std::string_view>{"foo", "bar"});
  EXPECT_TRUE(sw.contains("foo"));
  EXPECT_FALSE(sw.contains("the"));
  EXPECT_EQ(sw.size(), 2u);
}

TEST(HtmlStrip, RemovesTagsKeepsText) {
  EXPECT_EQ(html_strip("<p>Hello <b>world</b></p>"), " Hello  world  ");
}

TEST(HtmlStrip, DropsScriptAndStyleBodies) {
  const auto out = html_strip("a<script>var x=1;</script>b<style>p{}</style>c");
  EXPECT_EQ(out, "a b c");
}

TEST(HtmlStrip, DropsComments) {
  EXPECT_EQ(html_strip("x<!-- hidden words -->y"), "x y");
}

TEST(HtmlStrip, DecodesCommonEntities) {
  EXPECT_EQ(html_strip("a&amp;b &lt;tag&gt; &quot;q&quot; &nbsp;"), "a&b <tag> \"q\"  ");
}

TEST(HtmlStrip, NumericEntitiesBecomeSeparators) {
  EXPECT_EQ(html_strip("a&#8212;b"), "a b");
}

TEST(HtmlStrip, UnterminatedTagIsLiteral) {
  EXPECT_EQ(html_strip("3 < 4 and text"), "3 < 4 and text");
}

TEST(HtmlStrip, TokenizerIntegration) {
  const auto text = html_strip("<html><body><h1>Fast Indexing</h1>"
                               "<script>ignore()</script><p>on GPUs</p></body></html>");
  EXPECT_EQ(tokenize_to_vector(text),
            (std::vector<std::string>{"fast", "indexing", "on", "gpus"}));
}

}  // namespace
}  // namespace hetindex
