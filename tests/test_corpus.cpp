// Tests for the corpus substrate: container round trips and the synthetic
// generator's statistical fingerprints (Table III inputs).

#include <gtest/gtest.h>

#include <filesystem>
#include <set>

#include "corpus/container.hpp"
#include "corpus/synthetic.hpp"
#include "dict/trie_table.hpp"
#include "text/stopwords.hpp"

namespace hetindex {
namespace {

class TempDir {
 public:
  TempDir() {
    path_ = (std::filesystem::temp_directory_path() /
             ("hetindex_corpus_" + std::to_string(counter_++)))
                .string();
    std::filesystem::create_directories(path_);
  }
  ~TempDir() { std::filesystem::remove_all(path_); }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  static inline int counter_ = 0;
  std::string path_;
};

TEST(Container, PackUnpackRoundTrip) {
  std::vector<Document> docs(3);
  docs[0].url = "http://a";
  docs[0].body = "first body";
  docs[1].url = "http://b";
  docs[1].body = "second";
  docs[2].url = "";
  docs[2].body = "";
  const auto unpacked = container_unpack(container_pack(docs));
  ASSERT_EQ(unpacked.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(unpacked[i].local_id, i);
    EXPECT_EQ(unpacked[i].url, docs[i].url);
    EXPECT_EQ(unpacked[i].body, docs[i].body);
  }
}

TEST(Container, FileRoundTripAndCompression) {
  TempDir dir;
  std::vector<Document> docs;
  for (int i = 0; i < 50; ++i) {
    Document d;
    d.url = "http://site/" + std::to_string(i);
    d.body = std::string(2000, 'w');  // highly compressible
    docs.push_back(std::move(d));
  }
  const auto path = dir.path() + "/c.hdc";
  const auto sizes = container_write(path, docs);
  EXPECT_LT(sizes.compressed, sizes.uncompressed / 4);
  EXPECT_EQ(container_uncompressed_size(path), sizes.uncompressed);
  const auto loaded = container_read(path);
  ASSERT_EQ(loaded.size(), docs.size());
  EXPECT_EQ(loaded[17].body, docs[17].body);
}

TEST(Vocabulary, DeterministicAndUnique) {
  const Vocabulary a(5000, 0.03, 0.01, 42);
  const Vocabulary b(5000, 0.03, 0.01, 42);
  std::set<std::string> seen;
  for (std::uint64_t r = 1; r <= 5000; ++r) {
    EXPECT_EQ(a.word(r), b.word(r));
    EXPECT_TRUE(seen.insert(a.word(r)).second) << "duplicate " << a.word(r);
  }
}

TEST(Vocabulary, OddTopRanksAreStopWords) {
  // Stop words interleave with strong head terms (see synthetic.cpp): odd
  // top ranks are stop words, even ranks are indexable head terms.
  const Vocabulary v(1000, 0.0, 0.0, 1);
  const auto& stop = default_stopwords();
  EXPECT_TRUE(stop.contains(v.word(1)));
  EXPECT_TRUE(stop.contains(v.word(3)));
  EXPECT_TRUE(stop.contains(v.word(51)));
  EXPECT_FALSE(stop.contains(v.word(2)));
}

TEST(Vocabulary, MeanLengthNearPaperFingerprint) {
  // §III.B.1: average stemmed token length 6.6 on ClueWeb09; surface forms
  // are slightly longer. Accept a generous band.
  const Vocabulary v(100000, 0.03, 0.01, 7);
  EXPECT_GT(v.mean_length(), 4.5);
  EXPECT_LT(v.mean_length(), 10.0);
}

TEST(Vocabulary, CoversManyTrieCollections) {
  const Vocabulary v(50000, 0.03, 0.01, 3);
  std::set<std::uint32_t> collections;
  for (std::uint64_t r = 1; r <= v.size(); ++r) collections.insert(trie_index(v.word(r)));
  // Real vocabularies spread across thousands of three-letter prefixes.
  EXPECT_GT(collections.size(), 2000u);
  EXPECT_TRUE(collections.contains(0u) || true);
}

TEST(Generator, ProducesRequestedVolume) {
  TempDir dir;
  auto spec = wikipedia_like();
  spec.total_bytes = 2u << 20;
  spec.file_bytes = 1u << 20;
  spec.vocabulary = 20000;
  const auto coll = generate_collection(spec, dir.path());
  EXPECT_EQ(coll.files.size(), 2u);
  EXPECT_GT(coll.total_uncompressed(), spec.total_bytes * 9 / 10);
  EXPECT_GT(coll.total_docs(), 100u);
  EXPECT_LT(coll.total_compressed(), coll.total_uncompressed());
  for (const auto& f : coll.files) EXPECT_TRUE(std::filesystem::exists(f.path));
}

TEST(Generator, DeterministicAcrossRuns) {
  TempDir d1, d2;
  auto spec = wikipedia_like();
  spec.total_bytes = 1u << 20;
  spec.vocabulary = 10000;
  const auto c1 = generate_collection(spec, d1.path());
  const auto c2 = generate_collection(spec, d2.path());
  ASSERT_EQ(c1.files.size(), c2.files.size());
  for (std::size_t i = 0; i < c1.files.size(); ++i) {
    EXPECT_EQ(c1.files[i].uncompressed_bytes, c2.files[i].uncompressed_bytes);
    EXPECT_EQ(c1.files[i].doc_count, c2.files[i].doc_count);
  }
  const auto docs1 = container_read(c1.files[0].path);
  const auto docs2 = container_read(c2.files[0].path);
  EXPECT_EQ(docs1[0].body, docs2[0].body);
}

TEST(Generator, HtmlMarkupToggle) {
  TempDir dir;
  auto spec = clueweb_like();
  spec.total_bytes = 1u << 20;
  spec.file_bytes = 1u << 20;
  spec.vocabulary = 10000;
  spec.shift_fraction = 0;
  const auto coll = generate_collection(spec, dir.path());
  const auto docs = container_read(coll.files[0].path);
  EXPECT_NE(docs[0].body.find("<html"), std::string::npos);

  auto plain = wikipedia_like();
  plain.total_bytes = 1u << 20;
  plain.vocabulary = 10000;
  TempDir dir2;
  const auto coll2 = generate_collection(plain, dir2.path());
  const auto docs2 = container_read(coll2.files[0].path);
  EXPECT_EQ(docs2[0].body.find("<html"), std::string::npos);
}

TEST(Generator, ShiftedTailUsesDifferentRegime) {
  TempDir dir;
  auto spec = clueweb_like();
  spec.total_bytes = 4u << 20;
  spec.file_bytes = 1u << 20;
  spec.vocabulary = 20000;
  spec.shift_fraction = 0.25;  // last of 4 files shifted
  const auto coll = generate_collection(spec, dir.path());
  ASSERT_EQ(coll.files.size(), 4u);
  const auto head = container_read(coll.files[0].path);
  const auto tail = container_read(coll.files[3].path);
  EXPECT_NE(head[0].body.find("<html"), std::string::npos);
  EXPECT_EQ(tail[0].body.find("<html"), std::string::npos);  // wiki-like tail
  EXPECT_NE(tail[0].url.find("wikipedia"), std::string::npos);
}

TEST(Analyze, StatsReflectParsePath) {
  TempDir dir;
  auto spec = wikipedia_like();
  spec.total_bytes = 1u << 20;
  spec.vocabulary = 5000;
  const auto coll = generate_collection(spec, dir.path());
  const auto stats = analyze_collection(coll.paths());
  EXPECT_EQ(stats.documents, coll.total_docs());
  EXPECT_GT(stats.tokens, 10000u);
  EXPECT_GT(stats.terms, 500u);
  EXPECT_LT(stats.terms, stats.tokens);
  EXPECT_GT(stats.mean_token_length, 3.0);
  EXPECT_LT(stats.mean_token_length, 12.0);
  EXPECT_EQ(stats.compressed_bytes, coll.total_compressed());
}

}  // namespace
}  // namespace hetindex
