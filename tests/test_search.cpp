// Tests for the search-serving layer built on the inverted files: the
// doc map (Fig. 3 Step 1's <doc ID, location> table) and BM25 ranking
// through the Searcher facade (the old bm25_query free function is gone;
// test_search_service.cpp covers the facade's serving behaviour).

#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>

#include "core/hetindex.hpp"
#include "corpus/container.hpp"
#include "postings/doc_map.hpp"
#include "postings/ranking.hpp"
#include "search/searcher.hpp"

namespace hetindex {
namespace {

/// Ranked search via the facade, returning just the hits — the shape the
/// old bm25_query helper had, so the ranking assertions read unchanged.
std::vector<ScoredDoc> ranked(const InvertedIndex& index, const DocMap& map,
                              std::vector<std::string> terms, std::size_t k) {
  const auto searcher_ptr = Searcher::open(SearchSource::batch(index, map)).value();
  const Searcher& searcher = *searcher_ptr;
  QueryRequest request;
  request.query = Query::bag(std::move(terms));
  request.k = k;
  auto r = searcher.search(request);
  if (!r.has_value()) return {};
  return std::move(r.value().hits);
}

TEST(DocMapUnit, BuildWriteReadRoundTrip) {
  const auto path =
      (std::filesystem::temp_directory_path() / "hetindex_docmap.bin").string();
  DocMapBuilder builder;
  builder.add_file(0, 0, {"http://a/0", "http://a/1"}, {10, 20});
  builder.add_file(2, 1, {"http://b/0"}, {30});
  EXPECT_EQ(builder.doc_count(), 3u);
  builder.write(path);

  const auto map = DocMap::open(path);
  ASSERT_EQ(map.doc_count(), 3u);
  EXPECT_EQ(map.location(0).url, "http://a/0");
  EXPECT_EQ(map.location(1).url, "http://a/1");
  EXPECT_EQ(map.location(1).local_id, 1u);
  EXPECT_EQ(map.location(2).url, "http://b/0");
  EXPECT_EQ(map.location(2).file_seq, 1u);
  EXPECT_EQ(map.location(2).token_count, 30u);
  EXPECT_DOUBLE_EQ(map.average_doc_tokens(), 20.0);
  EXPECT_DEATH((void)map.location(3), "range");
  std::filesystem::remove(path);
}

TEST(DocMapUnit, OutOfOrderSpansAreSortedOnWrite) {
  const auto path =
      (std::filesystem::temp_directory_path() / "hetindex_docmap2.bin").string();
  DocMapBuilder builder;
  builder.add_file(1, 1, {"http://later"}, {5});
  builder.add_file(0, 0, {"http://first"}, {5});
  builder.write(path);
  const auto map = DocMap::open(path);
  EXPECT_EQ(map.location(0).url, "http://first");
  EXPECT_EQ(map.location(1).url, "http://later");
  std::filesystem::remove(path);
}

TEST(DocMapUnit, GappySpansDie) {
  const auto path =
      (std::filesystem::temp_directory_path() / "hetindex_docmap3.bin").string();
  DocMapBuilder builder;
  builder.add_file(0, 0, {"a"}, {1});
  builder.add_file(5, 1, {"b"}, {1});  // gap 1..4
  EXPECT_DEATH(builder.write(path), "dense");
}

TEST(Bm25Unit, IdfDecreasesWithDocumentFrequency) {
  EXPECT_GT(bm25_idf(1, 1000), bm25_idf(10, 1000));
  EXPECT_GT(bm25_idf(10, 1000), bm25_idf(500, 1000));
  EXPECT_GE(bm25_idf(1000, 1000), 0.0);  // non-negative even for ubiquitous terms
}

class SearchFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    dir_ = (std::filesystem::temp_directory_path() / "hetindex_search").string();
    std::filesystem::create_directories(dir_);
    std::vector<Document> docs = {
        {0, "http://site/short-relevant", "gpu index gpu index"},
        {1, "http://site/long-diluted",
         "gpu index scattered among many many many other unrelated words that "
         "make this document much longer than the short one so length "
         "normalization should punish it relative to the focused document"},
        {2, "http://site/one-term", "gpu only here"},
        {3, "http://site/unrelated", "completely different content entirely"},
    };
    const auto corpus = dir_ + "/c.hdc";
    container_write(corpus, docs);
    IndexBuilder builder;
    builder.parsers(1).cpu_indexers(1).gpus(1);
    builder.build({corpus}, dir_ + "/index");
  }
  static void TearDownTestSuite() { std::filesystem::remove_all(dir_); }
  static inline std::string dir_;
};

TEST_F(SearchFixture, PipelineWritesDocMap) {
  const auto map = DocMap::open(doc_map_path(dir_ + "/index"));
  ASSERT_EQ(map.doc_count(), 4u);
  EXPECT_EQ(map.location(0).url, "http://site/short-relevant");
  EXPECT_EQ(map.location(3).url, "http://site/unrelated");
  // Token counts reflect the indexed (post-stop-word) stream.
  EXPECT_EQ(map.location(0).token_count, 4u);
  EXPECT_GT(map.location(1).token_count, map.location(0).token_count);
}

TEST_F(SearchFixture, Bm25RanksFocusedDocFirst) {
  const auto index = InvertedIndex::open(dir_ + "/index", {}).value();
  const auto map = DocMap::open(doc_map_path(dir_ + "/index"));
  const auto hits =
      ranked(index, map, {normalize_term("gpu"), normalize_term("index")}, 10);
  ASSERT_GE(hits.size(), 3u);
  // Doc 0: both terms, tf 2 each, short → top. Doc 3 matches nothing.
  EXPECT_EQ(hits[0].doc_id, 0u);
  EXPECT_GT(hits[0].score, hits[1].score);
  for (const auto& h : hits) EXPECT_NE(h.doc_id, 3u);
  // Docs matching both terms outrank the one-term doc.
  EXPECT_EQ(hits.back().doc_id, 2u);
}

TEST_F(SearchFixture, Bm25LengthNormalizationPunishesDilution) {
  const auto index = InvertedIndex::open(dir_ + "/index", {}).value();
  const auto map = DocMap::open(doc_map_path(dir_ + "/index"));
  const auto hits = ranked(index, map, {normalize_term("gpu")}, 10);
  // All of docs 0,1,2 contain "gpu"; the long diluted doc must not be first.
  ASSERT_EQ(hits.size(), 3u);
  EXPECT_EQ(hits[0].doc_id, 0u);  // tf 2, short doc
  EXPECT_NE(hits[1].doc_id, 1u);  // long doc ranks last
}

TEST_F(SearchFixture, TopKTruncates) {
  const auto index = InvertedIndex::open(dir_ + "/index", {}).value();
  const auto map = DocMap::open(doc_map_path(dir_ + "/index"));
  const auto hits = ranked(index, map, {normalize_term("gpu")}, 1);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].doc_id, 0u);
}

TEST_F(SearchFixture, UnknownTermsScoreNothing) {
  const auto index = InvertedIndex::open(dir_ + "/index", {}).value();
  const auto map = DocMap::open(doc_map_path(dir_ + "/index"));
  EXPECT_TRUE(ranked(index, map, {"zzzznope"}, 10).empty());
  // Termless requests are a caller error now, not a silent empty answer.
  const auto searcher = Searcher::open(SearchSource::batch(index, map)).value();
  QueryRequest empty_request;
  const auto r = searcher->search(empty_request);
  ASSERT_FALSE(r.has_value());
  EXPECT_EQ(r.error().code, ErrorCode::kInvalidArgument);
}

}  // namespace
}  // namespace hetindex
