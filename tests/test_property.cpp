// Heavier randomized property tests: B-tree differential-fuzzed against
// std::map under mixed workloads, trie-table totality, concurrent index
// readers, and LZ fuzzing over structured random inputs.

#include <gtest/gtest.h>

#include <filesystem>
#include <map>
#include <thread>

#include "codec/lz.hpp"
#include "core/hetindex.hpp"
#include "corpus/container.hpp"
#include "dict/btree.hpp"
#include "dict/trie_table.hpp"
#include "util/rng.hpp"

namespace hetindex {
namespace {

std::string random_token(Rng& rng, std::size_t max_len, int alphabet) {
  std::string s;
  const std::size_t len = rng.below(max_len + 1);
  for (std::size_t i = 0; i < len; ++i)
    s.push_back(static_cast<char>('a' + rng.below(static_cast<std::uint64_t>(alphabet))));
  return s;
}

class BTreeFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BTreeFuzz, MixedInsertFindMatchesStdMap) {
  // 20k interleaved operations against a model std::map: after every
  // operation the B-tree must agree on membership and stored handles, and
  // at the end on the complete sorted key sequence.
  Rng rng(GetParam());
  Arena arena;
  BTree tree(arena, /*use_cache=*/GetParam() % 2 == 0);
  std::map<std::string, std::uint32_t> model;
  std::uint32_t next_handle = 1;

  for (int op = 0; op < 20000; ++op) {
    const auto key = random_token(rng, 10, 5);  // small alphabet → collisions
    if (rng.below(3) == 0) {
      // find
      const auto* slot = tree.find(key);
      const auto it = model.find(key);
      if (it == model.end()) {
        ASSERT_EQ(slot, nullptr) << "op " << op << " key " << key;
      } else {
        ASSERT_NE(slot, nullptr) << "op " << op << " key " << key;
        ASSERT_EQ(*slot, it->second) << "op " << op << " key " << key;
      }
    } else {
      auto res = tree.find_or_insert(key);
      const auto it = model.find(key);
      if (it == model.end()) {
        ASSERT_TRUE(res.created) << "op " << op;
        *res.postings_slot = next_handle;
        model[key] = next_handle++;
      } else {
        ASSERT_FALSE(res.created) << "op " << op;
        ASSERT_EQ(*res.postings_slot, it->second) << "op " << op;
      }
    }
  }
  ASSERT_EQ(tree.size(), model.size());
  auto it = model.begin();
  tree.for_each([&](std::string_view key, std::uint32_t handle) {
    ASSERT_NE(it, model.end());
    ASSERT_EQ(key, it->first);
    ASSERT_EQ(handle, it->second);
    ++it;
  });
  ASSERT_EQ(it, model.end());
}

INSTANTIATE_TEST_SUITE_P(Seeds, BTreeFuzz, ::testing::Values(1, 2, 3, 4, 5, 6));

TEST(TrieTableProperty, TotalAndConsistentOverRandomTokens) {
  // Every tokenizer-shaped string maps to exactly one collection whose
  // prefix the token actually carries.
  Rng rng(99);
  for (int i = 0; i < 100000; ++i) {
    std::string tok;
    const std::size_t len = 1 + rng.below(12);
    for (std::size_t c = 0; c < len; ++c) {
      const auto kind = rng.below(20);
      if (kind < 16) {
        tok.push_back(static_cast<char>('a' + rng.below(26)));
      } else if (kind < 19) {
        tok.push_back(static_cast<char>('0' + rng.below(10)));
      } else {
        tok.push_back('\xC3');  // UTF-8 lead byte (special letter)
      }
    }
    const auto idx = trie_index(tok);
    ASSERT_LT(idx, kTrieCollections);
    const auto prefix = trie_prefix(idx);
    ASSERT_EQ(tok.substr(0, prefix.size()), prefix) << tok;
    ASSERT_EQ(prefix + std::string(trie_suffix(tok, idx)), tok);
  }
}

TEST(LzFuzz, StructuredRandomRoundTrips) {
  // Mix of runs, repeats-at-distance, and noise — the match-finder's edge
  // cases (overlaps, max-offset boundaries, stored blocks).
  Rng rng(7);
  for (int trial = 0; trial < 15; ++trial) {
    std::vector<std::uint8_t> data;
    const std::size_t target = 1000 + rng.below(200000);
    while (data.size() < target) {
      switch (rng.below(4)) {
        case 0: {  // run
          const std::size_t n = 1 + rng.below(300);
          data.insert(data.end(), n, static_cast<std::uint8_t>(rng()));
          break;
        }
        case 1: {  // copy from earlier (forces matches near kMaxOffset)
          if (data.empty()) break;
          const std::size_t off = 1 + rng.below(std::min<std::size_t>(data.size(), 70000));
          const std::size_t n = 1 + rng.below(100);
          const std::size_t start = data.size() - off;
          for (std::size_t i = 0; i < n; ++i) data.push_back(data[start + i]);
          break;
        }
        default: {  // noise
          const std::size_t n = 1 + rng.below(200);
          for (std::size_t i = 0; i < n; ++i) data.push_back(static_cast<std::uint8_t>(rng()));
        }
      }
    }
    const auto comp = lz_compress(data);
    ASSERT_EQ(lz_decompress(comp), data) << "trial " << trial;
  }
}

TEST(ConcurrentQueries, ManyReadersShareOneIndex) {
  // The query path is const and must be safely shareable across threads —
  // the deployment model for a search node serving an index this library
  // built.
  const auto dir = (std::filesystem::temp_directory_path() / "hetindex_conc").string();
  std::filesystem::create_directories(dir);
  std::vector<Document> docs;
  for (int i = 0; i < 60; ++i) {
    Document d;
    d.local_id = static_cast<std::uint32_t>(i);
    d.body = "shared term" + std::to_string(i % 7) + " filler content";
    docs.push_back(std::move(d));
  }
  const auto corpus = dir + "/c.hdc";
  container_write(corpus, docs);
  IndexBuilder builder;
  builder.parsers(1).cpu_indexers(1).gpus(1);
  builder.build({corpus}, dir + "/index");

  const auto index = InvertedIndex::open(dir + "/index", {}).value();
  const auto expected = index.lookup("share");  // stem of "shared"
  ASSERT_TRUE(expected.has_value());
  std::atomic<int> mismatches{0};
  {
    std::vector<std::jthread> readers;
    for (int t = 0; t < 8; ++t) {
      readers.emplace_back([&] {
        for (int i = 0; i < 300; ++i) {
          const auto got = index.lookup("share");
          if (!got || got->doc_ids != expected->doc_ids) ++mismatches;
          const auto ranged = index.lookup_range("share", 10, 40);
          if (!ranged || ranged->doc_ids.empty()) ++mismatches;
        }
      });
    }
  }
  EXPECT_EQ(mismatches.load(), 0);
  std::filesystem::remove_all(dir);
}

TEST(ArenaStress, MillionsOfSmallAllocationsStayAddressable) {
  Arena arena(1 << 16);
  std::vector<std::pair<ArenaOffset, std::uint8_t>> samples;
  Rng rng(13);
  for (std::uint32_t i = 0; i < 2000000; ++i) {
    const std::size_t n = 1 + rng.below(24);
    const ArenaOffset off = arena.allocate(n);
    const auto tag = static_cast<std::uint8_t>(i);
    arena.pointer(off)[0] = tag;
    if (i % 50021 == 0) samples.emplace_back(off, tag);
  }
  for (const auto& [off, tag] : samples) ASSERT_EQ(arena.pointer(off)[0], tag);
}

}  // namespace
}  // namespace hetindex
