// Fault injection on the ingest read path (ISSUE 10): seeded FaultPlan
// EINTR / short-read / transient-EIO / hard-EIO schedules over a multi-file
// synthetic corpus. The contract under test: ingest reads never abort the
// process — transient faults are absorbed by bounded retries (counted in
// io_retries_total), hard faults surface as a structured PipelineReport
// error with partial run files cleaned up, and on every success path the
// emitted segment is bit-identical across prefetch depths and backends.

#include <gtest/gtest.h>

#include <filesystem>
#include <optional>
#include <string>
#include <vector>

#include "core/hetindex.hpp"
#include "io/async_reader.hpp"
#include "io/env.hpp"
#include "parse/read_scheduler.hpp"
#include "util/binary_io.hpp"

namespace hetindex {
namespace {

class TempDir {
 public:
  explicit TempDir(const std::string& tag) {
    path_ = (std::filesystem::temp_directory_path() /
             ("hetindex_ingest_faults_" + tag + "_" + std::to_string(counter_++)))
                .string();
    std::filesystem::create_directories(path_);
  }
  ~TempDir() { std::filesystem::remove_all(path_); }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  static inline int counter_ = 0;
  std::string path_;
};

class IngestFaultsFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    corpus_ = std::make_unique<TempDir>("corpus");
    auto spec = wikipedia_like();
    spec.total_bytes = 1u << 20;   // 8 container files
    spec.file_bytes = 128u << 10;
    spec.vocabulary = 4000;
    spec.seed = 0x9E1D;
    collection_ = generate_collection(spec, corpus_->path());
    ASSERT_GE(collection_.files.size(), 4u);
  }

  /// One pipeline build against the current Env. The config pins everything
  /// except the read path so output bytes depend only on the input corpus.
  PipelineReport run_build(const std::string& out_dir, std::size_t depth,
                           io::ReadBackend backend = io::ReadBackend::kAuto) {
    PipelineConfig config;
    config.parsers = 2;
    config.cpu_indexers = 1;
    config.gpus = 1;
    config.emit_segment = true;
    config.read_prefetch_depth = depth;
    config.read_backend = backend;
    config.output_dir = out_dir;
    PipelineEngine engine(config);
    return engine.build(collection_.paths());
  }

  static std::uint64_t retries_total() {
    return io::io_metrics().counter("io_retries_total").value();
  }

  std::unique_ptr<TempDir> corpus_;
  Collection collection_;
};

TEST_F(IngestFaultsFixture, EintrIsAbsorbedAndCounted) {
  io::FaultPlan plan;
  plan.pread_eintr_every = 3;  // every 3rd pread -> EINTR
  io::FaultEnv fault(plan);
  io::ScopedEnv scoped(fault);

  const auto before = retries_total();
  TempDir out("eintr");
  const auto report = run_build(out.path(), /*depth=*/4);
  EXPECT_TRUE(report.ok()) << report.error->to_string();
  EXPECT_EQ(report.documents, collection_.total_docs());
  EXPECT_GT(retries_total(), before);
  // With an override installed, the readahead path must stay on the
  // Env-routed pool — otherwise the injection above could not have fired.
  EXPECT_EQ(report.read_backend, "thread_pool");
}

TEST_F(IngestFaultsFixture, ShortPreadsConverge) {
  io::FaultPlan plan;
  plan.short_pread_bytes = 1000;  // every pread clamped to 1000 bytes
  io::FaultEnv fault(plan);
  io::ScopedEnv scoped(fault);

  TempDir out("short");
  const auto report = run_build(out.path(), /*depth=*/4);
  EXPECT_TRUE(report.ok()) << report.error->to_string();
  EXPECT_EQ(report.documents, collection_.total_docs());
}

TEST_F(IngestFaultsFixture, TransientEioBurstIsRetried) {
  io::FaultPlan plan;
  plan.pread_eio_at = 2;    // a 2-call EIO burst, well inside the retry budget
  plan.pread_eio_count = 2;
  io::FaultEnv fault(plan);
  io::ScopedEnv scoped(fault);

  const auto before = retries_total();
  TempDir out("eio_transient");
  const auto report = run_build(out.path(), /*depth=*/4);
  EXPECT_TRUE(report.ok()) << report.error->to_string();
  EXPECT_EQ(report.documents, collection_.total_docs());
  EXPECT_GE(retries_total(), before + 2);
}

TEST_F(IngestFaultsFixture, HardEioFailsStructurallyAndCleansUp) {
  io::FaultPlan plan;
  plan.pread_eio_at = 4;      // files 0..2 ingest fine, then a persistent EIO
  plan.pread_eio_count = 64;  // far past the retry budget
  io::FaultEnv fault(plan);
  io::ScopedEnv scoped(fault);

  TempDir out("eio_hard");
  const auto report = run_build(out.path(), /*depth=*/4);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.error->code, ErrorCode::kIo);
  EXPECT_NE(report.error->message.find("ingest read failed"), std::string::npos)
      << report.error->message;
  // Already-flushed partial runs must be cleaned up and the finalize
  // artifacts never written — the directory holds no stray index state.
  for (const auto& entry : std::filesystem::directory_iterator(out.path())) {
    const auto name = entry.path().filename().string();
    EXPECT_TRUE(name.find(".post") == std::string::npos &&
                name.find(".seg") == std::string::npos &&
                name.find("dict") == std::string::npos)
        << "stray artifact after failed build: " << name;
  }
}

TEST_F(IngestFaultsFixture, SerialDepthOneAlsoFailsStructurally) {
  io::FaultPlan plan;
  plan.pread_eio_at = 1;
  plan.pread_eio_count = 64;
  io::FaultEnv fault(plan);
  io::ScopedEnv scoped(fault);

  TempDir out("eio_serial");
  const auto report = run_build(out.path(), /*depth=*/1);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.error->code, ErrorCode::kIo);
  EXPECT_EQ(report.read_backend, "serial");
}

TEST_F(IngestFaultsFixture, SchedulerErrorIsSticky) {
  io::FaultPlan plan;
  plan.pread_eio_at = 1;
  plan.pread_eio_count = 64;
  io::FaultEnv fault(plan);
  io::ScopedEnv scoped(fault);

  ReadSchedulerOptions opt;
  opt.prefetch_depth = 4;
  ReadScheduler sched(collection_.paths(), opt);
  auto first = sched.next();
  ASSERT_FALSE(first.has_value());
  EXPECT_EQ(first.error().code, ErrorCode::kIo);
  // Every later call drains with the same structured error — no abort, no
  // hang, no file handed out past the failure.
  auto second = sched.next();
  ASSERT_FALSE(second.has_value());
  EXPECT_EQ(second.error().code, first.error().code);
  EXPECT_EQ(second.error().message, first.error().message);
}

TEST_F(IngestFaultsFixture, SegmentBitIdenticalAcrossDepthsAndBackends) {
  // Depth 1 (the paper's serialized discipline) is the reference.
  TempDir serial("serial");
  const auto serial_report = run_build(serial.path(), /*depth=*/1);
  ASSERT_TRUE(serial_report.ok());
  const auto reference = read_file(IndexLayout::segment_path(serial.path()));
  ASSERT_FALSE(reference.empty());

  // Prefetch depth 4, Env-routed pool.
  TempDir pool("pool");
  const auto pool_report =
      run_build(pool.path(), /*depth=*/4, io::ReadBackend::kThreadPool);
  ASSERT_TRUE(pool_report.ok());
  EXPECT_EQ(pool_report.read_backend, "thread_pool");
  EXPECT_EQ(read_file(IndexLayout::segment_path(pool.path())), reference);

  // Prefetch depth 4, auto resolution — io_uring when this build and
  // kernel support it, the pool otherwise; output must not care.
  TempDir autod("auto");
  const auto auto_report = run_build(autod.path(), /*depth=*/4, io::ReadBackend::kAuto);
  ASSERT_TRUE(auto_report.ok());
  if (io::io_uring_available()) {
    EXPECT_EQ(auto_report.read_backend, "io_uring");
  }
  EXPECT_EQ(read_file(IndexLayout::segment_path(autod.path())), reference);
}

}  // namespace
}  // namespace hetindex
