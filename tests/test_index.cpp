// Tests for the indexing stage: sampler/popularity split, CPU indexer,
// GPU indexer, and the CPU-vs-GPU differential property over real parsed
// blocks.

#include <gtest/gtest.h>

#include <filesystem>
#include <map>

#include "corpus/synthetic.hpp"
#include "index/indexer.hpp"
#include "index/sampler.hpp"
#include "parse/parser.hpp"

namespace hetindex {
namespace {

std::vector<Document> synth_docs(std::size_t count, std::uint64_t seed) {
  auto spec = wikipedia_like();
  spec.vocabulary = 3000;
  spec.avg_doc_tokens = 80;
  const Vocabulary vocab(spec.vocabulary, 0.03, 0.01, seed);
  Rng rng(seed);
  auto docs = generate_documents(spec, vocab, count * 600, 0, 1, rng);
  docs.resize(std::min(docs.size(), count));
  return docs;
}

TEST(Sampler, BalancePopularEqualizesTokenMass) {
  std::vector<std::uint32_t> popular = {10, 20, 30, 40, 50};
  std::vector<std::uint64_t> tokens(kTrieCollections, 0);
  tokens[10] = 100;
  tokens[20] = 90;
  tokens[30] = 50;
  tokens[40] = 40;
  tokens[50] = 10;
  const auto sets = balance_popular(popular, tokens, 2);
  ASSERT_EQ(sets.size(), 2u);
  std::uint64_t mass0 = 0, mass1 = 0;
  for (auto c : sets[0]) mass0 += tokens[c];
  for (auto c : sets[1]) mass1 += tokens[c];
  EXPECT_EQ(mass0 + mass1, 290u);
  // LPT on these numbers: {100,40,10}=150 vs {90,50}=140.
  EXPECT_LE(std::max(mass0, mass1) - std::min(mass0, mass1), 20u);
}

TEST(Sampler, ModSplitMatchesPaperExample) {
  // §III.E: unpopular (0, 13, 27, 175, 384, 5810, 10041, 17316) on 2 GPUs
  // → GPU0 gets (0, 384, 5810, 17316), GPU1 gets (13, 27, 175, 10041).
  const std::vector<std::uint32_t> unpopular = {0, 13, 27, 175, 384, 5810, 10041, 17316};
  const auto sets = split_unpopular_mod(unpopular, 2);
  EXPECT_EQ(sets[0], (std::vector<std::uint32_t>{0, 384, 5810, 17316}));
  EXPECT_EQ(sets[1], (std::vector<std::uint32_t>{13, 27, 175, 10041}));
}

TEST(Sampler, SampleFindsPopularCollections) {
  const auto dir = (std::filesystem::temp_directory_path() / "hetindex_sampler").string();
  std::filesystem::create_directories(dir);
  auto spec = wikipedia_like();
  spec.total_bytes = 1u << 20;
  spec.vocabulary = 5000;
  const auto coll = generate_collection(spec, dir);
  SamplerConfig cfg;
  cfg.sample_fraction = 0.2;
  cfg.popular_count = 20;
  const auto split = sample_and_split(coll.paths(), cfg);
  EXPECT_EQ(split.popular.size(), 20u);
  EXPECT_GT(split.unpopular.size(), 100u);
  EXPECT_GT(split.sampling_seconds, 0.0);
  // Popular collections must dominate sampled token mass per collection.
  std::uint64_t min_popular = ~0ull;
  for (auto c : split.popular) min_popular = std::min(min_popular, split.sampled_tokens[c]);
  for (auto c : split.unpopular)
    EXPECT_LE(split.sampled_tokens[c], min_popular);
  std::filesystem::remove_all(dir);
}

TEST(CpuIndexer, IndexesOwnedCollectionsOnly) {
  Parser parser({.strip_html = false});
  std::vector<Document> docs = {{0, "", "apple application banana 42"}};
  const auto block = parser.parse(docs, 0, 0, 100);

  DictionaryShard shard;
  PostingsStore store;
  // Own only the "app" collection.
  const auto app_idx = trie_index("apple");
  CpuIndexer indexer(shard, store, {app_idx});
  const auto stats = indexer.index_block(block);
  EXPECT_EQ(stats.collections_touched, 1u);
  EXPECT_EQ(stats.tokens, 2u);  // apple + application (stems "appl", "applic")
  EXPECT_EQ(stats.new_terms, 2u);
  EXPECT_EQ(shard.term_count(), 2u);
  // Global doc ids: base 100 + local 0.
  const auto* h = shard.find_term("appl");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(store.list(*h).doc_ids, (std::vector<std::uint32_t>{100}));
}

TEST(CpuIndexer, TermFrequencyAccumulates) {
  Parser parser({.strip_html = false});
  std::vector<Document> docs = {{0, "", "echo echo echo other"},
                                {1, "", "echo"}};
  const auto block = parser.parse(docs, 0, 0, 0);
  DictionaryShard shard;
  PostingsStore store;
  CpuIndexer indexer(shard, store, {trie_index("echo")});
  indexer.index_block(block);
  const auto* h = shard.find_term("echo");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(store.list(*h).doc_ids, (std::vector<std::uint32_t>{0, 1}));
  EXPECT_EQ(store.list(*h).tfs, (std::vector<std::uint32_t>{3, 1}));
}

TEST(GpuIndexer, MatchesCpuIndexerExactly) {
  // The central differential property (§III.D): GPU and CPU indexers given
  // the same parsed stream must produce identical dictionaries and
  // postings.
  Parser parser;
  const auto docs = synth_docs(200, 77);
  const auto block = parser.parse(docs, 0, 0, 0);

  // Both own *all* collections.
  std::vector<std::uint32_t> all;
  for (const auto& g : block.groups) all.push_back(g.trie_idx);

  DictionaryShard cpu_shard, gpu_shard;
  PostingsStore cpu_store, gpu_store;
  CpuIndexer cpu(cpu_shard, cpu_store, all);
  GpuIndexer gpu(gpu_shard, gpu_store, all);
  const auto cpu_stats = cpu.index_block(block);
  GpuIndexer::Timing timing;
  const auto gpu_stats = gpu.index_block(block, &timing);

  EXPECT_EQ(cpu_stats.tokens, gpu_stats.tokens);
  EXPECT_EQ(cpu_stats.new_terms, gpu_stats.new_terms);
  EXPECT_EQ(cpu_stats.chars, gpu_stats.chars);
  ASSERT_EQ(cpu_shard.term_count(), gpu_shard.term_count());

  // Postings must match term by term.
  std::size_t checked = 0;
  cpu_shard.for_each_tree([&](std::uint32_t idx, const BTree& tree) {
    const auto* gpu_tree = gpu_shard.tree_if_exists(idx);
    ASSERT_NE(gpu_tree, nullptr) << "collection " << idx;
    tree.for_each([&](std::string_view suffix, std::uint32_t cpu_handle) {
      const auto* gpu_handle = gpu_tree->find(suffix);
      ASSERT_NE(gpu_handle, nullptr);
      const auto& a = cpu_store.list(cpu_handle);
      const auto& b = gpu_store.list(*gpu_handle);
      ASSERT_EQ(a.doc_ids, b.doc_ids);
      ASSERT_EQ(a.tfs, b.tfs);
      ++checked;
    });
  });
  EXPECT_EQ(checked, cpu_shard.term_count());
  EXPECT_GT(timing.index_seconds, 0.0);
  EXPECT_GT(timing.pre_seconds, 0.0);
}

TEST(GpuIndexer, MoreThreadBlocksReduceSimTime) {
  Parser parser;
  const auto docs = synth_docs(400, 11);
  const auto block = parser.parse(docs, 0, 0, 0);
  std::vector<std::uint32_t> all;
  for (const auto& g : block.groups) all.push_back(g.trie_idx);

  auto run = [&](std::uint32_t blocks) {
    DictionaryShard shard;
    PostingsStore store;
    GpuIndexer gpu(shard, store, all, GpuSpec{}, blocks);
    GpuIndexer::Timing timing;
    gpu.index_block(block, &timing);
    return timing.index_seconds;
  };
  const double t1 = run(1);       // single thread block: fully serial
  const double t480 = run(480);   // the paper's optimum
  EXPECT_GT(t1, t480 * 5);        // massive parallelism gain
}

TEST(GpuIndexer, SplitWorkIsDisjointAndComplete) {
  Parser parser;
  const auto docs = synth_docs(150, 5);
  const auto block = parser.parse(docs, 0, 0, 0);
  std::vector<std::uint32_t> all;
  std::uint64_t total_tokens = 0;
  for (const auto& g : block.groups) {
    all.push_back(g.trie_idx);
    total_tokens += g.tokens;
  }
  const auto sets = split_unpopular_mod(all, 2);
  DictionaryShard s0, s1;
  PostingsStore p0, p1;
  GpuIndexer g0(s0, p0, sets[0]);
  GpuIndexer g1(s1, p1, sets[1]);
  const auto st0 = g0.index_block(block);
  const auto st1 = g1.index_block(block);
  EXPECT_EQ(st0.tokens + st1.tokens, total_tokens);
  EXPECT_EQ(st0.collections_touched + st1.collections_touched, all.size());
}

}  // namespace
}  // namespace hetindex
