// Failure-injection and edge-case tests: corrupted on-disk artifacts must
// die loudly (never silently return a wrong index), and degenerate inputs
// (empty docs, stop-word-only docs, unicode-heavy text, giant tokens) must
// flow through the full pipeline correctly.

#include <gtest/gtest.h>

#include <filesystem>

#include "codec/lz.hpp"
#include "core/hetindex.hpp"
#include "corpus/container.hpp"
#include "corpus/synthetic.hpp"
#include "postings/query.hpp"
#include "util/binary_io.hpp"
#include "util/rng.hpp"

namespace hetindex {
namespace {

class TempDir {
 public:
  explicit TempDir(const std::string& tag) {
    path_ = (std::filesystem::temp_directory_path() /
             ("hetindex_rob_" + tag + "_" + std::to_string(counter_++)))
                .string();
    std::filesystem::create_directories(path_);
  }
  ~TempDir() { std::filesystem::remove_all(path_); }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  static inline int counter_ = 0;
  std::string path_;
};

// ------------------------------------------------ corrupted artifacts

class CorruptionFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::make_unique<TempDir>("corrupt");
    std::vector<Document> docs;
    for (int i = 0; i < 20; ++i) {
      docs.push_back({static_cast<std::uint32_t>(i), "http://x/" + std::to_string(i),
                      "alpha beta gamma delta epsilon token" + std::to_string(i)});
    }
    corpus_file_ = dir_->path() + "/c.hdc";
    container_write(corpus_file_, docs);

    IndexBuilder builder;
    builder.parsers(1).cpu_indexers(1).gpus(0);
    index_dir_ = dir_->path() + "/index";
    builder.build({corpus_file_}, index_dir_);
  }

  static void flip_byte(const std::string& path, std::size_t from_end) {
    auto data = read_file(path);
    ASSERT_GT(data.size(), from_end);
    data[data.size() - 1 - from_end] ^= 0x5A;
    write_file(path, data);
  }

  std::unique_ptr<TempDir> dir_;
  std::string corpus_file_;
  std::string index_dir_;
};

TEST_F(CorruptionFixture, CorruptContainerPayloadDies) {
  flip_byte(corpus_file_, 10);
  EXPECT_DEATH((void)container_read(corpus_file_), "crc|lz|container");
}

TEST_F(CorruptionFixture, CorruptContainerMagicDies) {
  auto data = read_file(corpus_file_);
  data[0] ^= 0xFF;
  write_file(corpus_file_, data);
  EXPECT_DEATH((void)container_read(corpus_file_), "container");
}

TEST_F(CorruptionFixture, TruncatedContainerDies) {
  auto data = read_file(corpus_file_);
  data.resize(data.size() / 2);
  write_file(corpus_file_, data);
  EXPECT_DEATH((void)container_read(corpus_file_), "truncated|lz|short");
}

TEST_F(CorruptionFixture, CorruptRunFileBlobDies) {
  const auto run_path = IndexLayout::run_path(index_dir_, 0);
  flip_byte(run_path, 3);
  EXPECT_DEATH((void)RunFile::open(run_path), "corruption");
}

TEST_F(CorruptionFixture, CorruptDictionaryMagicDies) {
  const auto dict_path = IndexLayout::dictionary_path(index_dir_);
  auto data = read_file(dict_path);
  data[1] ^= 0xFF;
  write_file(dict_path, data);
  EXPECT_DEATH((void)dictionary_read(dict_path), "dictionary");
}

TEST_F(CorruptionFixture, MissingRunFileDies) {
  // The dictionary opens fine, so the failure surfaces inside the run-file
  // loader, which keeps its hard-fail behavior.
  std::filesystem::remove(IndexLayout::run_path(index_dir_, 0));
  EXPECT_DEATH((void)InvertedIndex::open(index_dir_, {}), "open|file");
}

TEST_F(CorruptionFixture, MissingIndexReportsNotFound) {
  const auto result = InvertedIndex::open(index_dir_ + "/nope", {});
  ASSERT_FALSE(result.has_value());
  EXPECT_EQ(result.error().code, ErrorCode::kNotFound);
  EXPECT_NE(result.error().message.find("no index"), std::string::npos);
}

TEST_F(CorruptionFixture, ForcedSegmentBackendReportsNotFound) {
  // No index.seg was built: forcing the segment backend reports instead of
  // aborting, so a caller can fall back to the run-file backend.
  const auto result = InvertedIndex::open(index_dir_, {IndexBackend::kSegment});
  ASSERT_FALSE(result.has_value());
  EXPECT_EQ(result.error().code, ErrorCode::kNotFound);
}

TEST_F(CorruptionFixture, IntactIndexStillOpens) {
  // Sanity: the fixture's artifacts are valid before any corruption.
  const auto index = InvertedIndex::open(index_dir_, {}).value();
  EXPECT_GT(index.term_count(), 0u);
  EXPECT_TRUE(index.lookup("alpha").has_value());
}

// ------------------------------------------------ degenerate documents

std::string build_and_lookup_dir(const std::vector<Document>& docs, const TempDir& dir) {
  const auto corpus = dir.path() + "/c.hdc";
  container_write(corpus, docs);
  IndexBuilder builder;
  builder.parsers(1).cpu_indexers(1).gpus(1);
  const auto out = dir.path() + "/index";
  builder.build({corpus}, out);
  return out;
}

TEST(DegenerateInput, EmptyDocumentsProduceEmptyIndex) {
  TempDir dir("empty");
  std::vector<Document> docs(5);  // all bodies empty
  const auto out = build_and_lookup_dir(docs, dir);
  const auto index = InvertedIndex::open(out, {}).value();
  EXPECT_EQ(index.term_count(), 0u);
}

TEST(DegenerateInput, StopWordOnlyDocuments) {
  TempDir dir("stop");
  std::vector<Document> docs(3);
  for (auto& d : docs) d.body = "the and of to a in is it";
  const auto out = build_and_lookup_dir(docs, dir);
  const auto index = InvertedIndex::open(out, {}).value();
  EXPECT_EQ(index.term_count(), 0u);
}

TEST(DegenerateInput, UnicodeHeavyDocuments) {
  TempDir dir("uni");
  std::vector<Document> docs(2);
  docs[0].body = "caf\xC3\xA9 na\xC3\xAFve r\xC3\xA9sum\xC3\xA9 \xC4\x8C"
                 "esky";
  docs[1].body = "caf\xC3\xA9 again";
  const auto out = build_and_lookup_dir(docs, dir);
  const auto index = InvertedIndex::open(out, {}).value();
  const auto hits = index.lookup("caf\xC3\xA9");
  ASSERT_TRUE(hits.has_value());
  EXPECT_EQ(hits->doc_ids, (std::vector<std::uint32_t>{0, 1}));
}

TEST(DegenerateInput, OverlongTokensAreTruncatedConsistently) {
  TempDir dir("long");
  const std::string giant(1000, 'q');
  std::vector<Document> docs(2);
  docs[0].body = giant;
  docs[1].body = giant + " tail";
  const auto out = build_and_lookup_dir(docs, dir);
  const auto index = InvertedIndex::open(out, {}).value();
  // Both docs contain the same (truncated) token → one term, two postings.
  const auto hits = index.lookup(std::string(kMaxTokenBytes, 'q'));
  ASSERT_TRUE(hits.has_value());
  EXPECT_EQ(hits->doc_ids.size(), 2u);
}

TEST(DegenerateInput, SingleTermCollection) {
  TempDir dir("one");
  std::vector<Document> docs(1);
  docs[0].body = "solitary";
  const auto out = build_and_lookup_dir(docs, dir);
  const auto index = InvertedIndex::open(out, {}).value();
  EXPECT_EQ(index.term_count(), 1u);
  const auto hits = index.lookup(normalize_term("solitary"));
  ASSERT_TRUE(hits.has_value());
  EXPECT_EQ(hits->tfs, (std::vector<std::uint32_t>{1}));
}

TEST(DegenerateInput, ManyFilesFewDocs) {
  // One tiny doc per file stresses run bookkeeping (one run per file).
  TempDir dir("many");
  std::vector<std::string> files;
  for (int f = 0; f < 12; ++f) {
    Document d;
    d.body = "common unique" + std::to_string(f);
    const auto path = dir.path() + "/f" + std::to_string(f) + ".hdc";
    container_write(path, {d});
    files.push_back(path);
  }
  IndexBuilder builder;
  builder.parsers(3).cpu_indexers(1).gpus(1);
  const auto out = dir.path() + "/index";
  const auto report = builder.build(files, out);
  EXPECT_EQ(report.runs.size(), 12u);
  const auto index = InvertedIndex::open(out, {}).value();
  const auto common = index.lookup("common");
  ASSERT_TRUE(common.has_value());
  EXPECT_EQ(common->doc_ids.size(), 12u);
  for (std::uint32_t i = 0; i < 12; ++i) EXPECT_EQ(common->doc_ids[i], i);
}

// ------------------------------------------------ prefix sampling

TEST(PrefixSampling, SampleIsPrefixOfFullDecode) {
  TempDir dir("sample");
  auto spec = wikipedia_like();
  spec.total_bytes = 2u << 20;
  spec.file_bytes = 2u << 20;
  spec.vocabulary = 5000;
  const auto coll = generate_collection(spec, dir.path());
  const auto file = read_file(coll.files[0].path);
  const auto full = container_decompress(file.data(), file.size());
  const auto sample = container_sample(file.data(), file.size(), 64 << 10);
  ASSERT_GT(sample.size(), 0u);
  ASSERT_LT(sample.size(), full.size());
  for (std::size_t i = 0; i < sample.size(); ++i) {
    ASSERT_EQ(sample[i].url, full[i].url);
    ASSERT_EQ(sample[i].body, full[i].body);
  }
}

TEST(PrefixSampling, HugeBudgetReturnsEverything) {
  TempDir dir("sample2");
  std::vector<Document> docs(7);
  for (int i = 0; i < 7; ++i) docs[static_cast<std::size_t>(i)].body = "word " + std::to_string(i);
  const auto path = dir.path() + "/c.hdc";
  container_write(path, docs);
  const auto file = read_file(path);
  const auto sample = container_sample(file.data(), file.size(), 1u << 30);
  EXPECT_EQ(sample.size(), docs.size());
}

TEST(PrefixSampling, LzPrefixMatchesFullDecode) {
  Rng rng(3);
  std::string text;
  const char* words[] = {"lorem", "ipsum", "dolor", "sit", "amet"};
  while (text.size() < (3u << 20)) {
    text += words[rng.below(5)];
    text += ' ';
  }
  const std::vector<std::uint8_t> data(text.begin(), text.end());
  const auto comp = lz_compress(data);
  const auto full = lz_decompress(comp);
  for (const std::uint64_t budget : {1ull << 10, 1ull << 20, 5ull << 20}) {
    const auto prefix = lz_decompress_prefix(comp.data(), comp.size(), budget);
    ASSERT_GE(prefix.size(), std::min<std::uint64_t>(budget, full.size()));
    ASSERT_LE(prefix.size(), full.size());
    ASSERT_TRUE(std::equal(prefix.begin(), prefix.end(), full.begin()));
  }
}

}  // namespace
}  // namespace hetindex
