// Tests for the hybrid trie + B-tree dictionary (§III.B, Tables I & II).

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <map>
#include <set>
#include <string>

#include "dict/btree.hpp"
#include "dict/dictionary.hpp"
#include "dict/trie_table.hpp"
#include "util/rng.hpp"

namespace hetindex {
namespace {

// ---------------------------------------------------------------- Table I

TEST(TrieTable, CollectionCountMatchesTableI) {
  EXPECT_EQ(kTrieCollections, 17613u);
}

TEST(TrieTable, SpecialTermsMapToZero) {
  // Table I examples for index 0: "-80", "3d", "Česky".
  EXPECT_EQ(trie_index("3d"), 0u);
  EXPECT_EQ(trie_index("\xC4\x8C"
                       "esky"),
            0u);
  EXPECT_EQ(trie_index(""), 0u);
  EXPECT_EQ(trie_index("9lives"), 0u);  // digit-led but not a pure number
}

TEST(TrieTable, PureNumbersGroupByFirstDigit) {
  EXPECT_EQ(trie_index("01"), 1u);    // Table I: "01", "0195" → 1
  EXPECT_EQ(trie_index("0195"), 1u);
  EXPECT_EQ(trie_index("9"), 10u);    // Table I: "9", "954" → 10
  EXPECT_EQ(trie_index("954"), 10u);
  EXPECT_EQ(trie_index("5"), 6u);
}

TEST(TrieTable, ShortOrSpecialLetterTermsGroupByFirstLetter) {
  // Table I index 11 examples: "a", "at", "act", "año"-likes.
  EXPECT_EQ(trie_index("a"), 11u);
  EXPECT_EQ(trie_index("at"), 11u);
  EXPECT_EQ(trie_index("act"), 11u);
  EXPECT_EQ(trie_index("z"), 36u);
  EXPECT_EQ(trie_index("zoo"), 36u);
  // >3 letters but special char within the first 3 → still the letter bucket.
  EXPECT_EQ(trie_index("zo\xC3\xA9"), 36u);
  EXPECT_EQ(trie_index("a1bc"), 11u);
}

TEST(TrieTable, LongTermsUseThreeLetterPrefix) {
  EXPECT_EQ(trie_index("aaat"), 37u);          // Table I: "aaat" → 37
  EXPECT_EQ(trie_index("aabomycin"), 38u);     // Table I: "aabomycin" → 38
  EXPECT_EQ(trie_index("zzzy"), 17612u);       // Table I: "zzzy" → 17612
  EXPECT_EQ(trie_index("application"), 37u + (0 * 676 + 15 * 26 + 15));  // "app"
}

TEST(TrieTable, SpecialCharAfterThirdLetterDoesNotDemote) {
  EXPECT_EQ(trie_index("aaa\xC3\xA9"), 37u);  // Table I: "aaaé" → 37
}

TEST(TrieTable, BoundaryBetweenShortAndLong) {
  EXPECT_EQ(trie_index("abc"), 11u);   // exactly 3 letters → letter bucket
  EXPECT_EQ(trie_index("abcd"), kTrieThreeLetterBase + 0 * 676 + 1 * 26 + 2);
}

TEST(TrieTable, PrefixLengthsPerRegion) {
  EXPECT_EQ(trie_prefix_length(0), 0u);
  EXPECT_EQ(trie_prefix_length(1), 1u);
  EXPECT_EQ(trie_prefix_length(10), 1u);
  EXPECT_EQ(trie_prefix_length(11), 1u);
  EXPECT_EQ(trie_prefix_length(36), 1u);
  EXPECT_EQ(trie_prefix_length(37), 3u);
  EXPECT_EQ(trie_prefix_length(17612), 3u);
}

TEST(TrieTable, PrefixReconstruction) {
  EXPECT_EQ(trie_prefix(0), "");
  EXPECT_EQ(trie_prefix(1), "0");
  EXPECT_EQ(trie_prefix(10), "9");
  EXPECT_EQ(trie_prefix(11), "a");
  EXPECT_EQ(trie_prefix(36), "z");
  EXPECT_EQ(trie_prefix(37), "aaa");
  EXPECT_EQ(trie_prefix(38), "aab");
  EXPECT_EQ(trie_prefix(17612), "zzz");
}

TEST(TrieTable, PrefixPlusSuffixReconstructsTerm) {
  for (const char* term : {"a", "at", "zoo", "01", "954", "application",
                           "parallel", "zzzy", "3d", "aabomycin"}) {
    const auto idx = trie_index(term);
    EXPECT_EQ(trie_prefix(idx) + std::string(trie_suffix(term, idx)), term) << term;
  }
}

TEST(TrieTable, EveryIndexConsistentWithItsPrefix) {
  // Property: for every three-letter region index, a synthetic member term
  // maps back to that index.
  for (std::uint32_t idx = kTrieThreeLetterBase; idx < kTrieCollections; idx += 101) {
    const auto term = trie_prefix(idx) + "xyz";
    EXPECT_EQ(trie_index(term), idx);
  }
  for (std::uint32_t idx = 11; idx <= 36; ++idx) {
    EXPECT_EQ(trie_index(trie_prefix(idx)), idx);
  }
  for (std::uint32_t idx = 1; idx <= 10; ++idx) {
    EXPECT_EQ(trie_index(trie_prefix(idx) + "77"), idx);
  }
}

// --------------------------------------------------------------- Table II

TEST(BTreeNode, LayoutIs512Bytes) {
  static_assert(sizeof(BTreeNode) == 512);
  EXPECT_EQ(sizeof(BTreeNode), 512u);
  EXPECT_EQ(kBTreeMaxKeys, 31u);  // "each node can hold up to 31 terms"
}

TEST(BTreeNode, CacheWordOrderMatchesMemcmp) {
  EXPECT_LT(compare_cache_words(make_cache_word("abc"), make_cache_word("abd")), 0);
  EXPECT_GT(compare_cache_words(make_cache_word("b"), make_cache_word("ab")), 0);
  EXPECT_EQ(compare_cache_words(make_cache_word("same"), make_cache_word("samething")), 0);
  // Zero padding sorts shorter strings first, like memcmp on length-padded.
  EXPECT_LT(compare_cache_words(make_cache_word("ab"), make_cache_word("abc")), 0);
}

// ----------------------------------------------------------------- BTree

TEST(BTree, InsertAndFindSingle) {
  Arena arena;
  BTree tree(arena);
  auto res = tree.find_or_insert("lication");
  EXPECT_TRUE(res.created);
  *res.postings_slot = 42;
  const auto* found = tree.find("lication");
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(*found, 42u);
  EXPECT_EQ(tree.find("other"), nullptr);
}

TEST(BTree, DuplicateInsertReturnsSameSlot) {
  Arena arena;
  BTree tree(arena);
  auto first = tree.find_or_insert("term");
  *first.postings_slot = 7;
  auto second = tree.find_or_insert("term");
  EXPECT_FALSE(second.created);
  EXPECT_EQ(*second.postings_slot, 7u);
  EXPECT_EQ(tree.size(), 1u);
}

TEST(BTree, EmptySuffixIsAValidKey) {
  // Term "a" in collection 11 has an empty suffix after prefix stripping.
  Arena arena;
  BTree tree(arena);
  auto res = tree.find_or_insert("");
  EXPECT_TRUE(res.created);
  *res.postings_slot = 9;
  ASSERT_NE(tree.find(""), nullptr);
  EXPECT_EQ(*tree.find(""), 9u);
  tree.find_or_insert("x");
  EXPECT_EQ(*tree.find(""), 9u);
}

TEST(BTree, ShortKeysFullyCached) {
  // Keys of ≤ 4 bytes must not allocate string records (paper: "short
  // strings can be fully stored within the B-tree node").
  Arena arena;
  BTree tree(arena);
  const std::size_t before = arena.used_bytes();
  tree.find_or_insert("ab");
  tree.find_or_insert("abcd");
  EXPECT_EQ(arena.used_bytes(), before);  // no string records allocated
  EXPECT_NE(tree.find("ab"), nullptr);
  EXPECT_NE(tree.find("abcd"), nullptr);
  EXPECT_EQ(tree.find("abc"), nullptr);
  EXPECT_EQ(tree.find("abcde"), nullptr);
}

TEST(BTree, DistinguishesSharedPrefixKeys) {
  Arena arena;
  BTree tree(arena);
  // All share the first 4 bytes — forces full-string comparisons.
  const std::vector<std::string> keys = {"lication", "licational", "lica", "licat",
                                         "lication2", "licb"};
  for (const auto& k : keys) tree.find_or_insert(k);
  EXPECT_EQ(tree.size(), keys.size());
  for (const auto& k : keys) EXPECT_NE(tree.find(k), nullptr) << k;
  EXPECT_EQ(tree.find("licatio"), nullptr);
}

TEST(BTree, SplitsPreserveAllKeys) {
  Arena arena;
  BTree tree(arena);
  // > 31 keys forces root split; a few hundred forces height 3.
  std::set<std::string> keys;
  Rng rng(99);
  while (keys.size() < 500) {
    std::string k;
    const std::size_t len = 1 + rng.below(10);
    for (std::size_t i = 0; i < len; ++i)
      k.push_back(static_cast<char>('a' + rng.below(26)));
    keys.insert(k);
  }
  for (const auto& k : keys) tree.find_or_insert(k);
  EXPECT_EQ(tree.size(), keys.size());
  EXPECT_GE(tree.height(), 2u);
  for (const auto& k : keys) EXPECT_NE(tree.find(k), nullptr) << k;
}

TEST(BTree, InOrderTraversalIsSorted) {
  Arena arena;
  BTree tree(arena);
  Rng rng(5);
  std::set<std::string> keys;
  while (keys.size() < 300) {
    std::string k;
    const std::size_t len = rng.below(12);  // includes empty
    for (std::size_t i = 0; i < len; ++i)
      k.push_back(static_cast<char>('a' + rng.below(26)));
    keys.insert(k);
  }
  for (const auto& k : keys) tree.find_or_insert(k);
  std::vector<std::string> traversed;
  tree.for_each([&](std::string_view s, std::uint32_t) { traversed.emplace_back(s); });
  ASSERT_EQ(traversed.size(), keys.size());
  EXPECT_TRUE(std::is_sorted(traversed.begin(), traversed.end()));
  EXPECT_TRUE(std::equal(traversed.begin(), traversed.end(), keys.begin()));
}

TEST(BTree, PostingsSlotsSurviveSplits) {
  Arena arena;
  BTree tree(arena);
  std::map<std::string, std::uint32_t> expected;
  Rng rng(7);
  for (std::uint32_t i = 0; i < 2000; ++i) {
    std::string k = "k" + std::to_string(rng.below(800));
    auto res = tree.find_or_insert(k);
    if (res.created) {
      *res.postings_slot = i + 1;
      expected[k] = i + 1;
    }
  }
  for (const auto& [k, v] : expected) {
    const auto* slot = tree.find(k);
    ASSERT_NE(slot, nullptr) << k;
    EXPECT_EQ(*slot, v) << k;
  }
}

TEST(BTree, SequentialInsertsAreHandled) {
  // Ascending insert order is the B-tree's worst case for split churn.
  Arena arena;
  BTree tree(arena);
  for (int i = 0; i < 1000; ++i) {
    char buf[16];
    std::snprintf(buf, sizeof buf, "%06d", i);
    tree.find_or_insert(buf);
  }
  EXPECT_EQ(tree.size(), 1000u);
  EXPECT_LE(tree.height(), 3u);  // log_16 bound of §III.B
}

TEST(BTree, HeightStaysLogarithmic) {
  Arena arena;
  BTree tree(arena);
  Rng rng(13);
  std::set<std::string> keys;
  while (keys.size() < 5000) {
    std::string k;
    for (int i = 0; i < 8; ++i) k.push_back(static_cast<char>('a' + rng.below(26)));
    keys.insert(k);
  }
  for (const auto& k : keys) tree.find_or_insert(k);
  // height <= log_t((n+1)/2) + 1 with t = 16.
  EXPECT_LE(tree.height(), 4u);
}

TEST(BTree, CacheModeAndNoCacheModeAgree) {
  Arena arena_a, arena_b;
  BTree cached(arena_a, /*use_cache=*/true);
  BTree plain(arena_b, /*use_cache=*/false);
  Rng rng(31);
  std::vector<std::string> keys;
  for (int i = 0; i < 800; ++i) {
    std::string k;
    const std::size_t len = rng.below(10);
    for (std::size_t j = 0; j < len; ++j)
      k.push_back(static_cast<char>('a' + rng.below(4)));  // heavy prefix sharing
    keys.push_back(k);
    cached.find_or_insert(k);
    plain.find_or_insert(k);
  }
  EXPECT_EQ(cached.size(), plain.size());
  std::vector<std::string> a, b;
  cached.for_each([&](std::string_view s, std::uint32_t) { a.emplace_back(s); });
  plain.for_each([&](std::string_view s, std::uint32_t) { b.emplace_back(s); });
  EXPECT_EQ(a, b);
}

TEST(BTree, CacheResolvesMostComparisons) {
  Arena arena;
  BTree tree(arena);
  Rng rng(41);
  for (int i = 0; i < 3000; ++i) {
    std::string k;
    for (int j = 0; j < 7; ++j) k.push_back(static_cast<char>('a' + rng.below(26)));
    tree.find_or_insert(k);
  }
  const auto stats = tree.stats();
  // Random 7-char keys rarely share 4-byte prefixes: the cache should
  // absorb the overwhelming majority of comparisons (§III.B.2).
  EXPECT_GT(stats.cache_hits, stats.string_reads * 10);
}

// ------------------------------------------------------------- Dictionary

TEST(DictionaryShard, RoutesTermsThroughTrieTable) {
  DictionaryShard shard;
  auto res = shard.insert_term("application");
  EXPECT_TRUE(res.created);
  EXPECT_FALSE(shard.insert_term("application").created);
  EXPECT_NE(shard.find_term("application"), nullptr);
  EXPECT_EQ(shard.find_term("applicative"), nullptr);
  // Same suffix under different prefixes must not collide.
  shard.insert_term("boblication");  // "bob" + "lication"
  EXPECT_EQ(shard.term_count(), 2u);
}

TEST(DictionaryShard, CountsCollections) {
  DictionaryShard shard;
  shard.insert_term("apple");
  shard.insert_term("apply");   // same collection "app"
  shard.insert_term("banana");  // "ban"
  shard.insert_term("01");      // number bucket
  EXPECT_EQ(shard.collection_count(), 3u);
  EXPECT_EQ(shard.term_count(), 4u);
}

TEST(Dictionary, OwnershipRouting) {
  Dictionary dict;
  const auto s0 = dict.add_shard();
  const auto s1 = dict.add_shard();
  dict.assign(trie_index("apple"), s0);
  dict.assign(trie_index("banana"), s1);
  dict.insert("apple");
  dict.insert("banana");
  EXPECT_EQ(dict.shard(s0).term_count(), 1u);
  EXPECT_EQ(dict.shard(s1).term_count(), 1u);
  EXPECT_NE(dict.find("apple"), nullptr);
  EXPECT_NE(dict.find("banana"), nullptr);
  EXPECT_EQ(dict.find("cherry"), nullptr);
}

TEST(Dictionary, CombineProducesSortedUniqueTerms) {
  Dictionary dict;
  dict.add_shard();
  dict.add_shard();
  const char* words[] = {"zebra", "apple", "at", "01", "3d", "application",
                         "applications", "zzzy", "banana"};
  // Route half the collections to shard 1 to exercise cross-shard combine.
  for (const char* w : words) {
    const auto idx = trie_index(w);
    dict.assign(idx, idx % 2);
    dict.insert(w);
  }
  const auto entries = dict.combine();
  EXPECT_EQ(entries.size(), std::size(words));
  EXPECT_TRUE(std::is_sorted(entries.begin(), entries.end(),
                             [](const auto& a, const auto& b) { return a.term < b.term; }));
  std::set<std::string> expected(std::begin(words), std::end(words));
  for (const auto& e : entries) EXPECT_TRUE(expected.contains(e.term)) << e.term;
}

TEST(Dictionary, PersistRoundTrip) {
  Dictionary dict;
  dict.add_shard();
  std::set<std::string> words;
  Rng rng(77);
  for (int i = 0; i < 500; ++i) {
    std::string w;
    const std::size_t len = 1 + rng.below(12);
    for (std::size_t j = 0; j < len; ++j)
      w.push_back(static_cast<char>('a' + rng.below(26)));
    words.insert(w);
  }
  std::uint32_t h = 1;
  for (const auto& w : words) {
    auto res = dict.insert(w);
    if (res.created) *res.postings_slot = h++;
  }
  const auto path =
      (std::filesystem::temp_directory_path() / "hetindex_dict_test.bin").string();
  dictionary_write(dict, path);
  const auto loaded = dictionary_read(path);
  ASSERT_EQ(loaded.size(), words.size());
  const auto original = dict.combine();
  for (std::size_t i = 0; i < loaded.size(); ++i) {
    EXPECT_EQ(loaded[i].term, original[i].term);
    EXPECT_EQ(loaded[i].handle, original[i].handle);
    EXPECT_EQ(loaded[i].shard, original[i].shard);
    EXPECT_EQ(loaded[i].trie_idx, original[i].trie_idx);
  }
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace hetindex
