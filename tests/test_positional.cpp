// Tests for positional postings: codec round trips, pipeline end-to-end
// with record_positions, phrase queries, and CPU-vs-GPU parity of the
// positional path.

#include <gtest/gtest.h>

#include <filesystem>
#include <set>

#include "codec/posting_codecs.hpp"
#include "core/hetindex.hpp"
#include "corpus/container.hpp"
#include "index/indexer.hpp"
#include "parse/parser.hpp"
#include "postings/boolean_ops.hpp"
#include "postings/merger.hpp"
#include "postings/run_file.hpp"
#include "util/rng.hpp"

namespace hetindex {
namespace {

class PositionalCodecParam : public ::testing::TestWithParam<PostingCodec> {};

TEST_P(PositionalCodecParam, RoundTripWithPositions) {
  // docs {3, 9}; tf {2, 3}; positions per doc non-decreasing.
  const std::vector<std::uint32_t> ids = {3, 9};
  const std::vector<std::uint32_t> tfs = {2, 3};
  const std::vector<std::uint32_t> pos = {0, 17, 4, 4, 1000};
  const auto enc = encode_postings(GetParam(), ids, tfs, &pos);
  std::vector<std::uint32_t> ids2, tfs2, pos2;
  decode_postings(enc.data(), enc.size(), ids2, tfs2, &pos2);
  EXPECT_EQ(ids2, ids);
  EXPECT_EQ(tfs2, tfs);
  EXPECT_EQ(pos2, pos);
}

TEST_P(PositionalCodecParam, NonPositionalDecoderIgnoresPositions) {
  const std::vector<std::uint32_t> ids = {1, 2};
  const std::vector<std::uint32_t> tfs = {1, 1};
  const std::vector<std::uint32_t> pos = {5, 6};
  const auto enc = encode_postings(GetParam(), ids, tfs, &pos);
  std::vector<std::uint32_t> ids2, tfs2;
  decode_postings(enc.data(), enc.size(), ids2, tfs2, nullptr);  // discard positions
  EXPECT_EQ(ids2, ids);
  EXPECT_EQ(tfs2, tfs);
}

TEST_P(PositionalCodecParam, RandomPositionalRoundTrip) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7 + 1);
  std::vector<std::uint32_t> ids, tfs, pos;
  std::uint32_t doc = 0;
  for (int i = 0; i < 300; ++i) {
    doc += 1 + static_cast<std::uint32_t>(rng.below(50));
    const auto tf = 1 + static_cast<std::uint32_t>(rng.below(6));
    ids.push_back(doc);
    tfs.push_back(tf);
    std::uint32_t p = static_cast<std::uint32_t>(rng.below(10));
    for (std::uint32_t k = 0; k < tf; ++k) {
      pos.push_back(p);
      p += static_cast<std::uint32_t>(rng.below(30));  // non-decreasing
    }
  }
  const auto enc = encode_postings(GetParam(), ids, tfs, &pos);
  std::vector<std::uint32_t> ids2, tfs2, pos2;
  decode_postings(enc.data(), enc.size(), ids2, tfs2, &pos2);
  EXPECT_EQ(ids2, ids);
  EXPECT_EQ(pos2, pos);
}

INSTANTIATE_TEST_SUITE_P(AllCodecs, PositionalCodecParam,
                         ::testing::Values(PostingCodec::kVByte, PostingCodec::kGamma,
                                           PostingCodec::kGolomb));

TEST(PositionalParser, PositionsCountStopwordSlots) {
  // Positions index the doc's token stream before stop-word removal, so a
  // removed "the" still advances the counter (standard IR practice keeps
  // proximity meaningful across removed words).
  Parser parser({.strip_html = false, .record_positions = true});
  std::vector<Document> docs = {{0, "", "alpha the beta"}};
  const auto block = parser.parse(docs, 0, 0, 0);
  std::vector<std::pair<std::string, std::uint32_t>> seen;
  for (const auto& g : block.groups) {
    for_each_posting_positional(g, [&](std::uint32_t, std::string_view s, std::uint32_t p) {
      seen.emplace_back(std::string(s), p);
    });
  }
  std::sort(seen.begin(), seen.end(),
            [](const auto& a, const auto& b) { return a.second < b.second; });
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0].second, 0u);  // alpha at 0
  EXPECT_EQ(seen[1].second, 2u);  // beta at 2 ("the" held slot 1)
}

class PositionalIndexFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    dir_ = (std::filesystem::temp_directory_path() / "hetindex_positional").string();
    std::filesystem::create_directories(dir_);
    std::vector<Document> docs = {
        {0, "", "fast inverted file construction on heterogeneous platforms"},
        {1, "", "inverted file construction is fast"},
        {2, "", "file inverted construction"},          // words present, wrong order
        {3, "", "the inverted file wins"},              // stop word inside phrase
        {4, "", "inverted inverted file file"},
    };
    const auto corpus = dir_ + "/c.hdc";
    container_write(corpus, docs);
    IndexBuilder builder;
    builder.parsers(1).cpu_indexers(1).gpus(1);
    builder.config().parser.record_positions = true;
    builder.build({corpus}, dir_ + "/index");
  }
  static void TearDownTestSuite() { std::filesystem::remove_all(dir_); }
  static inline std::string dir_;
};

TEST_F(PositionalIndexFixture, LookupPositionalReturnsPositions) {
  const auto index = InvertedIndex::open(dir_ + "/index", {}).value();
  const auto p = index.lookup_positional(normalize_term("inverted"));
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->doc_ids, (std::vector<std::uint32_t>{0, 1, 2, 3, 4}));
  std::uint32_t total_tf = 0;
  for (auto tf : p->tfs) total_tf += tf;
  EXPECT_EQ(p->positions.size(), total_tf);
  // Doc 0: "inverted" is token 1.
  EXPECT_EQ(p->positions[0], 1u);
}

TEST_F(PositionalIndexFixture, PhraseQueryRequiresAdjacency) {
  const auto index = InvertedIndex::open(dir_ + "/index", {}).value();
  const std::vector<std::string> phrase = {normalize_term("inverted"),
                                           normalize_term("file")};
  const auto hits = phrase_query(index, phrase);
  ASSERT_TRUE(hits.has_value());
  // Docs 0, 1, 4 contain "inverted file" adjacently; doc 2 has the words
  // reversed; doc 3 has them adjacent too ("the inverted file wins" →
  // positions 1,2).
  EXPECT_EQ(hits->doc_ids, (std::vector<std::uint32_t>{0, 1, 3, 4}));
}

TEST_F(PositionalIndexFixture, ThreeTermPhrase) {
  const auto index = InvertedIndex::open(dir_ + "/index", {}).value();
  const std::vector<std::string> phrase = {normalize_term("inverted"),
                                           normalize_term("file"),
                                           normalize_term("construction")};
  const auto hits = phrase_query(index, phrase);
  ASSERT_TRUE(hits.has_value());
  EXPECT_EQ(hits->doc_ids, (std::vector<std::uint32_t>{0, 1}));
}

TEST_F(PositionalIndexFixture, PhraseQueryMissingTerm) {
  const auto index = InvertedIndex::open(dir_ + "/index", {}).value();
  EXPECT_FALSE(phrase_query(index, {"nonexistentterm"}).has_value());
}

TEST_F(PositionalIndexFixture, RepeatedTermCountsPhraseOccurrences) {
  const auto index = InvertedIndex::open(dir_ + "/index", {}).value();
  // Doc 4: "inverted inverted file file" — "inverted file" matches once
  // (position 1 → 2).
  const auto hits = phrase_query(
      index, {normalize_term("inverted"), normalize_term("file")});
  ASSERT_TRUE(hits.has_value());
  const auto it = std::find(hits->doc_ids.begin(), hits->doc_ids.end(), 4u);
  ASSERT_NE(it, hits->doc_ids.end());
  EXPECT_EQ(hits->tfs[static_cast<std::size_t>(it - hits->doc_ids.begin())], 1u);
}

TEST(PositionalParity, GpuMatchesCpuWithPositions) {
  Parser parser({.strip_html = false, .record_positions = true});
  Rng rng(55);
  std::vector<Document> docs;
  const char* words[] = {"alpha", "beta", "gamma", "delta", "epsilon", "zeta"};
  for (int d = 0; d < 50; ++d) {
    Document doc;
    doc.local_id = static_cast<std::uint32_t>(d);
    for (int t = 0; t < 40; ++t) {
      doc.body += words[rng.below(6)];
      doc.body += ' ';
    }
    docs.push_back(std::move(doc));
  }
  const auto block = parser.parse(docs, 0, 0, 0);
  std::vector<std::uint32_t> all;
  for (const auto& g : block.groups) all.push_back(g.trie_idx);

  DictionaryShard cpu_shard, gpu_shard;
  PostingsStore cpu_store, gpu_store;
  CpuIndexer cpu(cpu_shard, cpu_store, all);
  GpuIndexer gpu(gpu_shard, gpu_store, all);
  cpu.index_block(block);
  gpu.index_block(block);

  cpu_shard.for_each_tree([&](std::uint32_t idx, const BTree& tree) {
    const auto* gpu_tree = gpu_shard.tree_if_exists(idx);
    ASSERT_NE(gpu_tree, nullptr);
    tree.for_each([&](std::string_view suffix, std::uint32_t h) {
      const auto* gh = gpu_tree->find(suffix);
      ASSERT_NE(gh, nullptr);
      const auto& a = cpu_store.list(h);
      const auto& b = gpu_store.list(*gh);
      ASSERT_EQ(a.doc_ids, b.doc_ids);
      ASSERT_EQ(a.tfs, b.tfs);
      ASSERT_EQ(a.positions, b.positions);
    });
  });
}

TEST(PositionalMerge, MergedRunsKeepPositions) {
  const auto dir =
      (std::filesystem::temp_directory_path() / "hetindex_posmerge").string();
  std::filesystem::create_directories(dir);
  PostingsList a;
  a.doc_ids = {1, 2};
  a.tfs = {2, 1};
  a.positions = {0, 5, 3};
  PostingsList b;
  b.doc_ids = {10};
  b.tfs = {1};
  b.positions = {7};
  {
    RunFileWriter w(dir + "/run_0.post", 0);
    w.add_list({0, 1}, a);
    w.finalize();
  }
  {
    RunFileWriter w(dir + "/run_1.post", 1);
    w.add_list({0, 1}, b);
    w.finalize();
  }
  merge_runs({dir + "/run_0.post", dir + "/run_1.post"}, dir + "/merged.post");
  const auto merged = RunFile::open(dir + "/merged.post");
  std::vector<std::uint32_t> ids, tfs, pos;
  ASSERT_TRUE(merged.fetch({0, 1}, ids, tfs, &pos));
  EXPECT_EQ(ids, (std::vector<std::uint32_t>{1, 2, 10}));
  EXPECT_EQ(pos, (std::vector<std::uint32_t>{0, 5, 3, 7}));
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace hetindex
