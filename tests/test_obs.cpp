// Observability layer tests: instrument registration and update semantics,
// snapshot consistency under concurrent writers, queue probes, the JSON
// round-trip of both MetricsSnapshot and PipelineReport, configuration
// validation, and the engine-level invariant that metric totals equal the
// PipelineReport aggregates on a synthetic corpus.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <string_view>
#include <thread>
#include <vector>

#include "core/hetindex.hpp"
#include "pipeline/reorder_buffer.hpp"
#include "util/bounded_queue.hpp"

namespace hetindex {
namespace {

using obs::json_parse;
using obs::JsonValue;
using obs::QueueProbe;

TEST(MetricsRegistry, GetOrCreateReturnsStableInstruments) {
  MetricsRegistry m;
  obs::Counter& a = m.counter("events_total");
  a.add(3);
  EXPECT_EQ(&m.counter("events_total"), &a);
  EXPECT_EQ(m.counter("events_total").value(), 3u);
  EXPECT_EQ(m.counter("other_total").value(), 0u);

  obs::TimeCounter& t = m.time_counter("busy_seconds_total");
  t.add(0.5);
  t.add(0.25);
  EXPECT_DOUBLE_EQ(m.time_counter("busy_seconds_total").value(), 0.75);

  obs::Gauge& g = m.gauge("depth");
  g.set(4);
  g.add(-1);
  EXPECT_EQ(g.value(), 3);
  EXPECT_EQ(g.max(), 4);
  g.set(10);
  EXPECT_EQ(g.max(), 10);

  obs::Stat& s = m.stat("sample_seconds");
  s.add(1.0);
  s.add(3.0);
  EXPECT_EQ(s.value().count(), 2u);
  EXPECT_DOUBLE_EQ(s.value().mean(), 2.0);
  EXPECT_DOUBLE_EQ(s.value().min(), 1.0);
  EXPECT_DOUBLE_EQ(s.value().max(), 3.0);

  obs::Histo& h = m.histogram("mbps", 0.0, 10.0, 10);
  h.add(0.5);
  h.add(5.5);
  h.add(99.0);  // clamps to top bucket
  EXPECT_EQ(h.value().total(), 3u);
  EXPECT_EQ(h.value().bucket_count(0), 1u);
  EXPECT_EQ(h.value().bucket_count(5), 1u);
  EXPECT_EQ(h.value().bucket_count(9), 1u);
}

TEST(MetricsRegistry, StageSpanFeedsTotalAndPerSampleStat) {
  MetricsRegistry m;
  obs::TimeCounter& total = m.time_counter("stage_seconds_total");
  obs::Stat& per_run = m.stat("run_seconds");
  double first = 0;
  {
    obs::StageSpan span(&total, &per_run);
    first = span.stop();
    EXPECT_EQ(span.stop(), first);  // idempotent
  }
  { obs::StageSpan span(&total, &per_run); }  // records via destructor
  EXPECT_EQ(per_run.value().count(), 2u);
  EXPECT_GE(first, 0.0);
  EXPECT_DOUBLE_EQ(total.value(), per_run.value().sum());
}

TEST(MetricsRegistry, SnapshotIsConsistentUnderConcurrentWriters) {
  MetricsRegistry m;
  constexpr int kThreads = 4;
  constexpr std::uint64_t kPerThread = 20000;
  obs::Counter& events = m.counter("events_total");
  obs::TimeCounter& seconds = m.time_counter("busy_seconds_total");
  obs::Gauge& level = m.gauge("level");
  obs::Stat& samples = m.stat("samples");
  std::atomic<bool> done{false};

  std::vector<std::jthread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        events.add(1);
        seconds.add(0.001);
        level.add(1);
        level.add(-1);
        if (i % 64 == 0) samples.add(static_cast<double>(i));
      }
    });
  }
  // Snapshots taken while writers run must be internally sane and monotone.
  std::uint64_t last = 0;
  while (!done.load()) {
    const MetricsSnapshot snap = m.snapshot();
    const std::uint64_t now = snap.counter("events_total");
    EXPECT_GE(now, last);
    EXPECT_LE(now, kThreads * kPerThread);
    EXPECT_GE(snap.time_seconds("busy_seconds_total"), 0.0);
    last = now;
    if (now == kThreads * kPerThread) break;
    std::this_thread::yield();
  }
  writers.clear();  // join
  const MetricsSnapshot final = m.snapshot();
  EXPECT_EQ(final.counter("events_total"), kThreads * kPerThread);
  EXPECT_NEAR(final.time_seconds("busy_seconds_total"),
              0.001 * static_cast<double>(kThreads * kPerThread), 1e-6);
  EXPECT_EQ(final.gauge("level")->value, 0);
  EXPECT_LE(final.gauge("level")->max, kThreads);
  EXPECT_EQ(final.stat("samples")->count,
            static_cast<std::uint64_t>(kThreads) * (kPerThread / 64 + (kPerThread % 64 ? 1 : 0)));
}

TEST(QueueProbes, BoundedQueueReportsDepthAndStalls) {
  MetricsRegistry m;
  QueueProbe probe{&m.gauge("q_depth"), &m.time_counter("q_producer_stall"),
                   &m.time_counter("q_consumer_stall")};
  BoundedQueue<int> q(2, probe);
  // Fill to capacity, then a blocking producer must stall until a consumer
  // frees a slot.
  ASSERT_TRUE(q.push(1));
  ASSERT_TRUE(q.push(2));
  EXPECT_EQ(m.gauge("q_depth").value(), 2);
  std::jthread producer([&] { ASSERT_TRUE(q.push(3)); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(q.pop(), 1);
  producer.join();
  EXPECT_GT(m.time_counter("q_producer_stall").value(), 0.0);
  EXPECT_EQ(m.gauge("q_depth").max(), 2);
  EXPECT_EQ(q.pop(), 2);
  EXPECT_EQ(q.pop(), 3);
  // Consumer stall: pop on an empty queue until a delayed producer arrives.
  std::jthread slow([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    q.push(4);
  });
  EXPECT_EQ(q.pop(), 4);
  slow.join();
  EXPECT_GT(m.time_counter("q_consumer_stall").value(), 0.0);
  EXPECT_EQ(m.gauge("q_depth").value(), 0);
}

TEST(QueueProbes, ReorderBufferReportsWindowDepthAndProducerStall) {
  MetricsRegistry m;
  QueueProbe probe{&m.gauge("rb_depth"), &m.time_counter("rb_producer_stall"),
                   &m.time_counter("rb_consumer_stall")};
  ReorderBuffer<int> buf(2, probe);
  ASSERT_TRUE(buf.push(1, 1));
  ASSERT_TRUE(buf.push(2, 2));
  EXPECT_EQ(m.gauge("rb_depth").value(), 2);
  // Window full with later sequences: a producer holding seq 3 stalls
  // until the consumer drains the head.
  std::jthread producer([&] { ASSERT_TRUE(buf.push(3, 3)); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  ASSERT_TRUE(buf.push(0, 0));  // head of line is always admitted
  EXPECT_EQ(buf.pop_next(), 0);
  EXPECT_EQ(buf.pop_next(), 1);
  producer.join();
  EXPECT_GT(m.time_counter("rb_producer_stall").value(), 0.0);
  EXPECT_GE(m.gauge("rb_depth").max(), 2);
  EXPECT_EQ(buf.pop_next(), 2);
  EXPECT_EQ(buf.pop_next(), 3);
  EXPECT_EQ(m.gauge("rb_depth").value(), 0);
}

TEST(Json, ParserHandlesEscapesNestingAndRejectsGarbage) {
  const auto doc = json_parse(R"({"a":[1,2.5,-3e2],"s":"q\"\\\nA","b":true,"n":null})");
  ASSERT_TRUE(doc.has_value());
  ASSERT_TRUE(doc->is_object());
  const JsonValue* a = doc->find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_EQ(a->array.size(), 3u);
  EXPECT_DOUBLE_EQ(a->array[0].number, 1.0);
  EXPECT_DOUBLE_EQ(a->array[1].number, 2.5);
  EXPECT_DOUBLE_EQ(a->array[2].number, -300.0);
  EXPECT_EQ(doc->find("s")->str, "q\"\\\nA");
  EXPECT_TRUE(doc->find("b")->boolean);
  EXPECT_EQ(doc->find("n")->kind, JsonValue::Kind::kNull);

  EXPECT_FALSE(json_parse("{"));
  EXPECT_FALSE(json_parse("[1,]"));
  EXPECT_FALSE(json_parse("{} trailing"));
  EXPECT_FALSE(json_parse("\"unterminated"));
}

TEST(Json, SnapshotRoundTripsThroughJson) {
  MetricsRegistry m;
  m.counter("docs_total").add(12345);
  m.time_counter("busy_seconds_total").add(1.5);
  m.gauge("depth").set(7);
  m.gauge("depth").set(3);
  m.stat("run_seconds").add(0.25);
  m.stat("run_seconds").add(0.75);
  m.histogram("mbps", 0.0, 100.0, 4).add(30.0);

  const auto doc = json_parse(m.to_json());
  ASSERT_TRUE(doc.has_value());
  EXPECT_DOUBLE_EQ(doc->find("counters")->find("docs_total")->number, 12345.0);
  EXPECT_DOUBLE_EQ(doc->find("time_counters")->find("busy_seconds_total")->number, 1.5);
  const JsonValue* depth = doc->find("gauges")->find("depth");
  EXPECT_DOUBLE_EQ(depth->find("value")->number, 3.0);
  EXPECT_DOUBLE_EQ(depth->find("max")->number, 7.0);
  const JsonValue* stat = doc->find("stats")->find("run_seconds");
  EXPECT_DOUBLE_EQ(stat->find("count")->number, 2.0);
  EXPECT_DOUBLE_EQ(stat->find("sum")->number, 1.0);
  EXPECT_DOUBLE_EQ(stat->find("mean")->number, 0.5);
  const JsonValue* hist = doc->find("histograms")->find("mbps");
  EXPECT_DOUBLE_EQ(hist->find("total")->number, 1.0);
  ASSERT_EQ(hist->find("counts")->array.size(), 4u);
  EXPECT_DOUBLE_EQ(hist->find("counts")->array[1].number, 1.0);
}

TEST(Json, PrometheusDumpCarriesEverySeries) {
  MetricsRegistry m;
  m.counter("docs_total").add(5);
  m.gauge("depth").set(2);
  m.stat("run_seconds").add(1.0);
  m.histogram("mbps", 0.0, 10.0, 2).add(3.0);
  const std::string text = m.to_prometheus();
  EXPECT_NE(text.find("hetindex_docs_total 5\n"), std::string::npos);
  EXPECT_NE(text.find("hetindex_depth 2\n"), std::string::npos);
  EXPECT_NE(text.find("hetindex_depth_max 2\n"), std::string::npos);
  EXPECT_NE(text.find("hetindex_run_seconds_count 1\n"), std::string::npos);
  EXPECT_NE(text.find("hetindex_mbps_bucket{le=\"5\"} 1\n"), std::string::npos);
  EXPECT_NE(text.find("hetindex_mbps_bucket{le=\"+Inf\"} 1\n"), std::string::npos);
}

TEST(ConfigValidate, DefaultConfigIsValid) {
  EXPECT_TRUE(PipelineConfig{}.validate().empty());
}

TEST(ConfigValidate, ReportsEveryProblemDescriptively) {
  PipelineConfig config;
  config.parsers = 0;
  config.cpu_indexers = 0;
  config.gpus = 0;
  config.buffers_per_parser = 0;
  config.sampler.sample_fraction = 0.0;
  config.output_dir.clear();
  const auto errors = config.validate();
  ASSERT_EQ(errors.size(), 5u);
  for (const auto& e : errors) EXPECT_EQ(e.code, ErrorCode::kInvalidArgument);
  auto mentions = [&](std::string_view what) {
    for (const auto& e : errors) {
      if (e.message.find(what) != std::string::npos) return true;
    }
    return false;
  };
  EXPECT_TRUE(mentions("parsers"));
  EXPECT_TRUE(mentions("indexer"));
  EXPECT_TRUE(mentions("buffers_per_parser"));
  EXPECT_TRUE(mentions("sample_fraction"));
  EXPECT_TRUE(mentions("output_dir"));

  PipelineConfig gpu_config;
  gpu_config.gpu_thread_blocks = 0;
  const auto gpu_errors = gpu_config.validate();
  ASSERT_EQ(gpu_errors.size(), 1u);
  EXPECT_NE(gpu_errors[0].message.find("gpu_thread_blocks"), std::string::npos);

  PipelineConfig popular_config;
  popular_config.sampler.popular_count = 0;
  EXPECT_EQ(popular_config.validate().size(), 1u);
  popular_config.cpu_indexers = 0;  // GPU-only: popular_count may be 0
  EXPECT_TRUE(popular_config.validate().empty());
}

// ---- Engine-level: metrics vs report aggregates on a synthetic corpus.

class ObsPipelineFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    corpus_dir_ = std::filesystem::temp_directory_path() / "hetindex_obs_corpus";
    std::filesystem::remove_all(corpus_dir_);
    auto spec = wikipedia_like();
    spec.total_bytes = 1u << 20;  // 1 MB, 2 files
    spec.file_bytes = 512u << 10;
    spec.vocabulary = 4000;
    spec.avg_doc_tokens = 150;
    collection_ = new Collection(generate_collection(spec, corpus_dir_.string()));
  }
  static void TearDownTestSuite() {
    delete collection_;
    collection_ = nullptr;
    std::filesystem::remove_all(corpus_dir_);
  }

  static inline std::filesystem::path corpus_dir_;
  static inline Collection* collection_ = nullptr;
};

TEST_F(ObsPipelineFixture, MetricTotalsEqualReportAggregates) {
  const auto out = std::filesystem::temp_directory_path() / "hetindex_obs_out";
  std::filesystem::remove_all(out);
  IndexBuilder builder;
  builder.parsers(2).cpu_indexers(1).gpus(1);
  builder.config().sampler.popular_count = 30;
  std::uint64_t progress_calls = 0, last_runs = 0;
  builder.progress([&](const PipelineProgress& p) {
    ++progress_calls;
    EXPECT_GT(p.runs_completed, last_runs);
    last_runs = p.runs_completed;
    EXPECT_EQ(p.files_total, collection_->files.size());
  });
  const auto report = builder.build(collection_->paths(), out.string());
  std::filesystem::remove_all(out);

  const MetricsSnapshot& m = report.metrics;
  EXPECT_EQ(m.counter("pipeline_documents_total"), report.documents);
  EXPECT_EQ(m.counter("pipeline_tokens_total"), report.tokens);
  EXPECT_EQ(m.counter("pipeline_postings_total"), report.postings);
  EXPECT_EQ(m.counter("pipeline_source_bytes_total"), report.uncompressed_bytes);
  EXPECT_EQ(m.counter("pipeline_compressed_bytes_total"), report.compressed_bytes);
  EXPECT_EQ(m.counter("pipeline_runs_total"), report.runs.size());
  EXPECT_EQ(m.counter("parse_files_read_total"), collection_->files.size());
  ASSERT_NE(m.gauge("dictionary_terms"), nullptr);
  EXPECT_EQ(static_cast<std::uint64_t>(m.gauge("dictionary_terms")->value), report.terms);
  EXPECT_EQ(progress_calls, report.runs.size());
  EXPECT_EQ(last_runs, report.runs.size());

  // Stage time counters mirror the RunRecord-derived sums.
  double parse_sum = 0, read_sum = 0, flush_sum = 0, cpu_sum = 0;
  for (const auto& r : report.runs) {
    parse_sum += r.parse_seconds;
    read_sum += r.read_seconds;
    flush_sum += r.flush_seconds;
    for (const double s : r.cpu_index_seconds) cpu_sum += s;
  }
  EXPECT_NEAR(m.time_seconds("stage_parse_seconds_total"), parse_sum, 1e-9);
  EXPECT_NEAR(m.time_seconds("stage_read_seconds_total"), read_sum, 1e-9);
  EXPECT_NEAR(m.time_seconds("stage_flush_seconds_total"), flush_sum, 1e-9);
  EXPECT_NEAR(m.time_seconds("stage_cpu_index_seconds_total"), cpu_sum, 1e-9);
  ASSERT_NE(m.stat("run_parse_seconds"), nullptr);
  EXPECT_EQ(m.stat("run_parse_seconds")->count, report.runs.size());
  EXPECT_NEAR(m.time_seconds("stage_sampling_seconds_total"), report.sampling_seconds, 1e-9);
}

TEST_F(ObsPipelineFixture, ReportJsonTotalsMatchPrintedReport) {
  const auto out = std::filesystem::temp_directory_path() / "hetindex_obs_json_out";
  std::filesystem::remove_all(out);
  IndexBuilder builder;
  builder.parsers(2).cpu_indexers(1).gpus(1);
  builder.config().sampler.popular_count = 30;
  const auto report = builder.build(collection_->paths(), out.string());
  std::filesystem::remove_all(out);

  const auto doc = json_parse(report.to_json());
  ASSERT_TRUE(doc.has_value());
  const JsonValue* totals = doc->find("totals");
  ASSERT_NE(totals, nullptr);
  EXPECT_EQ(static_cast<std::uint64_t>(totals->find("documents")->number), report.documents);
  EXPECT_EQ(static_cast<std::uint64_t>(totals->find("terms")->number), report.terms);
  EXPECT_EQ(static_cast<std::uint64_t>(totals->find("postings")->number), report.postings);
  EXPECT_EQ(static_cast<std::uint64_t>(totals->find("tokens")->number), report.tokens);
  EXPECT_EQ(static_cast<std::uint64_t>(totals->find("uncompressed_bytes")->number),
            report.uncompressed_bytes);
  EXPECT_DOUBLE_EQ(totals->find("throughput_mb_s")->number, report.throughput_mb_s());
  EXPECT_EQ(doc->find("runs")->array.size(), report.runs.size());
  const JsonValue* config = doc->find("config");
  EXPECT_DOUBLE_EQ(config->find("parsers")->number, 2.0);
  EXPECT_DOUBLE_EQ(config->find("cpu_indexers")->number, 1.0);
  // The embedded metrics snapshot agrees with the top-level totals.
  const JsonValue* counters = doc->find("metrics")->find("counters");
  EXPECT_EQ(static_cast<std::uint64_t>(counters->find("pipeline_documents_total")->number),
            report.documents);
  EXPECT_EQ(static_cast<std::uint64_t>(counters->find("pipeline_postings_total")->number),
            report.postings);
}

}  // namespace
}  // namespace hetindex
