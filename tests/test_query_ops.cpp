// Tests for boolean retrieval operators and index verification. Query-level
// conjunction goes through the Searcher facade (QueryMode::kConjunctive) —
// the old conjunctive_query free function is gone.

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <set>

#include "core/hetindex.hpp"
#include "corpus/container.hpp"
#include "postings/boolean_ops.hpp"
#include "postings/verify.hpp"
#include "search/searcher.hpp"
#include "util/binary_io.hpp"
#include "util/rng.hpp"

namespace hetindex {
namespace {

QueryPostings make(std::initializer_list<std::uint32_t> ids) {
  QueryPostings p;
  for (auto id : ids) {
    p.doc_ids.push_back(id);
    p.tfs.push_back(id % 5 + 1);
  }
  return p;
}

TEST(BooleanOps, AndBasics) {
  const auto r = postings_and(make({1, 3, 5, 7}), make({2, 3, 5, 9}));
  EXPECT_EQ(r.doc_ids, (std::vector<std::uint32_t>{3, 5}));
  // tfs sum across both sides.
  EXPECT_EQ(r.tfs[0], (3 % 5 + 1) * 2u);
}

TEST(BooleanOps, AndWithEmptyAndDisjoint) {
  EXPECT_TRUE(postings_and(make({}), make({1, 2})).doc_ids.empty());
  EXPECT_TRUE(postings_and(make({1, 3}), make({2, 4})).doc_ids.empty());
}

TEST(BooleanOps, OrMergesAndSums) {
  const auto r = postings_or(make({1, 3}), make({2, 3, 4}));
  EXPECT_EQ(r.doc_ids, (std::vector<std::uint32_t>{1, 2, 3, 4}));
  EXPECT_EQ(r.tfs[2], (3 % 5 + 1) * 2u);  // doc 3 present in both
}

TEST(BooleanOps, OrWithEmpty) {
  const auto r = postings_or(make({}), make({5, 6}));
  EXPECT_EQ(r.doc_ids, (std::vector<std::uint32_t>{5, 6}));
}

TEST(BooleanOps, AndNot) {
  const auto r = postings_and_not(make({1, 2, 3, 4, 5}), make({2, 4, 9}));
  EXPECT_EQ(r.doc_ids, (std::vector<std::uint32_t>{1, 3, 5}));
}

TEST(BooleanOps, AndNotEverythingRemoved) {
  EXPECT_TRUE(postings_and_not(make({1, 2}), make({1, 2, 3})).doc_ids.empty());
}

TEST(BooleanOps, GallopingMatchesLinearOnRandomLists) {
  Rng rng(9);
  for (int trial = 0; trial < 30; ++trial) {
    std::set<std::uint32_t> sa, sb;
    const std::size_t na = 1 + rng.below(300);
    const std::size_t nb = 1 + rng.below(3000);
    while (sa.size() < na) sa.insert(static_cast<std::uint32_t>(rng.below(10000)));
    while (sb.size() < nb) sb.insert(static_cast<std::uint32_t>(rng.below(10000)));
    QueryPostings a, b;
    for (auto id : sa) {
      a.doc_ids.push_back(id);
      a.tfs.push_back(1);
    }
    for (auto id : sb) {
      b.doc_ids.push_back(id);
      b.tfs.push_back(2);
    }
    const auto linear = postings_and(a, b);
    const auto gallop = postings_and_galloping(a, b);
    ASSERT_EQ(gallop.doc_ids, linear.doc_ids) << "trial " << trial;
    ASSERT_EQ(gallop.tfs, linear.tfs) << "trial " << trial;
  }
}

TEST(BooleanOps, OperatorsPreserveSortedness) {
  Rng rng(11);
  std::set<std::uint32_t> sa, sb;
  while (sa.size() < 500) sa.insert(static_cast<std::uint32_t>(rng.below(5000)));
  while (sb.size() < 500) sb.insert(static_cast<std::uint32_t>(rng.below(5000)));
  QueryPostings a, b;
  for (auto id : sa) {
    a.doc_ids.push_back(id);
    a.tfs.push_back(1);
  }
  for (auto id : sb) {
    b.doc_ids.push_back(id);
    b.tfs.push_back(1);
  }
  for (const auto& r : {postings_and(a, b), postings_or(a, b), postings_and_not(a, b)}) {
    EXPECT_TRUE(std::is_sorted(r.doc_ids.begin(), r.doc_ids.end()));
    EXPECT_EQ(r.doc_ids.size(), r.tfs.size());
  }
}

class QueryIndexFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    dir_ = (std::filesystem::temp_directory_path() / "hetindex_qops").string();
    std::filesystem::create_directories(dir_);
    std::vector<Document> docs = {
        {0, "", "apple banana cherry"},
        {1, "", "apple banana"},
        {2, "", "apple"},
        {3, "", "banana cherry"},
        {4, "", "apple cherry dates"},
    };
    const auto corpus = dir_ + "/c.hdc";
    container_write(corpus, docs);
    IndexBuilder builder;
    builder.parsers(1).cpu_indexers(1).gpus(1);
    builder.build({corpus}, dir_ + "/index");
  }
  static void TearDownTestSuite() { std::filesystem::remove_all(dir_); }
  static inline std::string dir_;
};

TEST_F(QueryIndexFixture, ConjunctiveModeIntersects) {
  const auto index = InvertedIndex::open(dir_ + "/index", {}).value();
  // No doc map: boolean modes only.
  const auto searcher_ptr = Searcher::open(SearchSource::batch(index)).value();
  const Searcher& searcher = *searcher_ptr;
  QueryRequest request;
  request.query = Query::conjunction({normalize_term("apple"), normalize_term("banana")});
  const auto r = searcher.search(request);
  ASSERT_TRUE(r.has_value());
  std::vector<std::uint32_t> docs;
  for (const auto& h : r.value().hits) docs.push_back(h.doc_id);
  std::sort(docs.begin(), docs.end());
  EXPECT_EQ(docs, (std::vector<std::uint32_t>{0, 1}));

  request.query = Query::conjunction({normalize_term("apple"), normalize_term("banana"),
                                      normalize_term("cherry")});
  const auto r3 = searcher.search(request);
  ASSERT_TRUE(r3.has_value());
  ASSERT_EQ(r3.value().hits.size(), 1u);
  EXPECT_EQ(r3.value().hits[0].doc_id, 0u);
}

TEST_F(QueryIndexFixture, ConjunctiveModeMissingTerm) {
  const auto index = InvertedIndex::open(dir_ + "/index", {}).value();
  const auto searcher_ptr = Searcher::open(SearchSource::batch(index)).value();
  const Searcher& searcher = *searcher_ptr;
  QueryRequest request;
  request.query = Query::conjunction({normalize_term("apple"), "zzzznope"});
  const auto r = searcher.search(request);
  ASSERT_TRUE(r.has_value());
  EXPECT_TRUE(r.value().hits.empty());  // any absent term empties the AND

  request.query = Query();
  const auto empty = searcher.search(request);
  ASSERT_FALSE(empty.has_value());
  EXPECT_EQ(empty.error().code, ErrorCode::kInvalidArgument);
}

TEST_F(QueryIndexFixture, TermsWithPrefixScansLexicographically) {
  const auto index = InvertedIndex::open(dir_ + "/index", {}).value();
  // Dictionary holds the stems: appl, banana, cherri, date.
  const auto all = index.terms_with_prefix("");
  EXPECT_EQ(all.size(), index.term_count());
  EXPECT_TRUE(std::is_sorted(all.begin(), all.end()));
  const auto a_terms = index.terms_with_prefix("a");
  ASSERT_EQ(a_terms.size(), 1u);
  EXPECT_EQ(a_terms[0], "appl");
  EXPECT_TRUE(index.terms_with_prefix("zz").empty());
  const auto exact = index.terms_with_prefix("banana");
  ASSERT_EQ(exact.size(), 1u);
}

TEST_F(QueryIndexFixture, VerifyPassesOnIntactIndex) {
  const auto report = verify_index(dir_ + "/index");
  for (const auto& e : report.errors) ADD_FAILURE() << e;
  EXPECT_TRUE(report.ok);
  EXPECT_EQ(report.terms, 4u);  // apple banana cherry dates (stemmed forms)
  EXPECT_GT(report.postings, 0u);
}

TEST_F(QueryIndexFixture, VerifyFlagsMissingDictionary) {
  const auto scratch =
      (std::filesystem::temp_directory_path() / "hetindex_qops_broken").string();
  std::filesystem::remove_all(scratch);
  std::filesystem::create_directories(scratch);
  const auto report = verify_index(scratch);
  EXPECT_FALSE(report.ok);
  std::filesystem::remove_all(scratch);
}

TEST_F(QueryIndexFixture, VerifyFlagsDoctoredDirectoryRange) {
  // Copy the index and shrink a directory entry's doc range so the run's
  // real range exceeds it.
  const auto scratch =
      (std::filesystem::temp_directory_path() / "hetindex_qops_range").string();
  std::filesystem::remove_all(scratch);
  std::filesystem::copy(dir_ + "/index", scratch);
  auto entries = index_directory_read(IndexLayout::directory_path(scratch));
  ASSERT_FALSE(entries.empty());
  entries[0].max_doc = 0;
  entries[0].min_doc = 0;
  index_directory_write(IndexLayout::directory_path(scratch), entries);
  const auto report = verify_index(scratch);
  EXPECT_FALSE(report.ok);
  std::filesystem::remove_all(scratch);
}

}  // namespace
}  // namespace hetindex
