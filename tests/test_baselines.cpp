// Tests for the single-node baselines and the MapReduce baselines: all of
// them must produce the same logical inverted index as the hash reference
// (and therefore as the core pipeline, which test_pipeline checks against
// the same reference path).

#include <gtest/gtest.h>

#include <filesystem>

#include "baseline/baselines.hpp"
#include "corpus/synthetic.hpp"
#include "mapreduce/mr_indexers.hpp"
#include "mapreduce/remote_lists.hpp"

namespace hetindex {
namespace {

class BaselineFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    dir_ = (std::filesystem::temp_directory_path() / "hetindex_baseline").string();
    std::filesystem::create_directories(dir_);
    auto spec = wikipedia_like();
    spec.total_bytes = 1u << 20;
    spec.file_bytes = 256u << 10;
    spec.vocabulary = 4000;
    spec.avg_doc_tokens = 150;
    collection_ = new Collection(generate_collection(spec, dir_));
    reference_ = new BaselineResult(hash_index(collection_->paths()));
  }
  static void TearDownTestSuite() {
    delete reference_;
    delete collection_;
    std::filesystem::remove_all(dir_);
  }

  static void expect_same_index(const std::map<std::string, PostingsList>& got) {
    const auto& ref = reference_->index;
    ASSERT_EQ(got.size(), ref.size());
    auto it = ref.begin();
    for (const auto& [term, list] : got) {
      ASSERT_EQ(term, it->first);
      ASSERT_EQ(list.doc_ids, it->second.doc_ids) << term;
      ASSERT_EQ(list.tfs, it->second.tfs) << term;
      ++it;
    }
  }

  static inline std::string dir_;
  static inline Collection* collection_ = nullptr;
  static inline BaselineResult* reference_ = nullptr;
};

TEST_F(BaselineFixture, HashReferenceIsSane) {
  EXPECT_GT(reference_->terms(), 500u);
  EXPECT_GT(reference_->tokens, 10000u);
  // Every postings list is sorted and non-empty.
  for (const auto& [term, list] : reference_->index) {
    ASSERT_FALSE(list.empty()) << term;
    for (std::size_t i = 1; i < list.size(); ++i)
      ASSERT_LT(list.doc_ids[i - 1], list.doc_ids[i]) << term;
  }
}

TEST_F(BaselineFixture, SerialTrieRegroupedMatchesReference) {
  expect_same_index(serial_trie_index(collection_->paths(), true).index);
}

TEST_F(BaselineFixture, SerialTrieUngroupedMatchesReference) {
  expect_same_index(serial_trie_index(collection_->paths(), false).index);
}

TEST_F(BaselineFixture, SingleBTreeMatchesReference) {
  expect_same_index(single_btree_index(collection_->paths()).index);
}

TEST_F(BaselineFixture, SortBasedMatchesReference) {
  // Small run budget forces multiple runs + k-way merge.
  expect_same_index(sort_based_index(collection_->paths(), 10000).index);
}

TEST_F(BaselineFixture, SpimiMatchesReference) {
  expect_same_index(spimi_index(collection_->paths(), 10000).index);
}

TEST_F(BaselineFixture, IvoryMapReduceMatchesReference) {
  const auto result = ivory_mr_index(collection_->paths(), ivory_cluster(), 8);
  expect_same_index(result.index);
  EXPECT_GT(result.stats.map_seconds, 0.0);
  EXPECT_GT(result.stats.shuffle_seconds, 0.0);
  EXPECT_GT(result.stats.reduce_seconds, 0.0);
  EXPECT_GT(result.stats.emitted_records, reference_->terms());
}

TEST_F(BaselineFixture, SinglePassMapReduceMatchesReference) {
  const auto result = singlepass_mr_index(collection_->paths(), sp_cluster(), 8);
  expect_same_index(result.index);
  EXPECT_GT(result.stats.total_seconds, 0.0);
}

TEST_F(BaselineFixture, SinglePassShufflesLessThanIvory) {
  // McCreadie et al.'s point: emitting partial postings lists cuts the
  // number of emits and the shuffle volume versus per-posting emits.
  const auto ivory = ivory_mr_index(collection_->paths(), ivory_cluster(), 8);
  const auto sp = singlepass_mr_index(collection_->paths(), sp_cluster(), 8);
  EXPECT_LT(sp.stats.emitted_records, ivory.stats.emitted_records / 2);
  EXPECT_LT(sp.stats.shuffled_bytes, ivory.stats.shuffled_bytes);
}

TEST_F(BaselineFixture, RemoteListsMatchesReference) {
  const auto result = remote_lists_index(collection_->paths(), sp_cluster());
  expect_same_index(result.index);
  EXPECT_GT(result.stats.vocabulary_seconds, 0.0);
  EXPECT_GT(result.stats.network_seconds, 0.0);
  EXPECT_GT(result.stats.tuples_shipped, reference_->tokens / 2);
  EXPECT_GT(result.stats.total_seconds,
            result.stats.vocabulary_seconds + result.stats.parse_seconds);
}

TEST_F(BaselineFixture, RemoteListsPaysTwoParsePasses) {
  // The algorithm's defining cost: the vocabulary pass scans everything
  // before indexing starts, so parse-class work is paid twice — the
  // second-pass parse time matches the vocabulary pass minus its broadcast
  // overhead.
  const auto result = remote_lists_index(collection_->paths(), sp_cluster());
  EXPECT_GT(result.stats.parse_seconds, 0.0);
  EXPECT_LE(result.stats.parse_seconds, result.stats.vocabulary_seconds);
  EXPECT_GT(result.stats.parse_seconds, result.stats.vocabulary_seconds * 0.3);
  // Total includes both passes.
  EXPECT_GE(result.stats.total_seconds,
            result.stats.parse_seconds + result.stats.vocabulary_seconds);
}

TEST_F(BaselineFixture, MapReduceOverheadsMakeItSlowerThanLocalBaselines) {
  // Fig. 12's qualitative claim on equal input: the task overheads and
  // network shuffle make high-level MR indexing slower end-to-end than an
  // architecture-aware single-node build of the same index.
  const auto sp = singlepass_mr_index(collection_->paths(), sp_cluster(), 8);
  const auto local = serial_trie_index(collection_->paths(), true);
  EXPECT_GT(sp.stats.total_seconds, local.total_seconds());
}

}  // namespace
}  // namespace hetindex
