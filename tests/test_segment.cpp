// Single-file segment tests: writer/reader round trip, run-file fold
// equivalence (the segment must answer every query exactly like the legacy
// backend), corruption detection (truncation, bit flips, bad footers must
// die loudly out of SegmentReader::open, never decode garbage), and
// lock-free concurrent readers sharing one SegmentReader.

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "core/hetindex.hpp"
#include "corpus/container.hpp"
#include "io/mmap_file.hpp"
#include "util/binary_io.hpp"
#include "util/crc32.hpp"

namespace hetindex {
namespace {

class TempDir {
 public:
  explicit TempDir(const std::string& tag) {
    path_ = (std::filesystem::temp_directory_path() /
             ("hetindex_seg_" + tag + "_" + std::to_string(counter_++)))
                .string();
    std::filesystem::create_directories(path_);
  }
  ~TempDir() { std::filesystem::remove_all(path_); }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  static inline int counter_ = 0;
  std::string path_;
};

// ------------------------------------------------ writer/reader round trip

std::vector<std::uint8_t> encode_list(const std::vector<std::uint32_t>& ids) {
  std::vector<std::uint32_t> tfs(ids.size(), 1);
  return encode_postings(PostingCodec::kVByte, ids, tfs);
}

TEST(SegmentWriterReader, RoundTripAcrossBlockBoundaries) {
  TempDir dir("rt");
  const std::string path = dir.path() + "/t.seg";
  // 3 terms per block and 8 terms → three blocks, last one partial.
  SegmentWriter writer(path, PostingCodec::kVByte, /*terms_per_block=*/3);
  std::vector<std::string> terms = {"alder", "alder2", "beech",
                                    "birch", "cedar", "cedarwood",
                                    "fir",   "pine"};
  for (std::size_t i = 0; i < terms.size(); ++i) {
    const std::vector<std::uint32_t> ids = {static_cast<std::uint32_t>(i),
                                            static_cast<std::uint32_t>(i + 10)};
    const auto blob = encode_list(ids);
    writer.add_term(terms[i], blob.data(), blob.size(), 2, ids.front(), ids.back());
  }
  EXPECT_EQ(writer.term_count(), terms.size());
  const auto total = writer.finalize().value();
  EXPECT_EQ(total, std::filesystem::file_size(path));

  const auto reader = SegmentReader::open(path);
  EXPECT_EQ(reader.term_count(), terms.size());
  EXPECT_EQ(reader.codec(), PostingCodec::kVByte);
  EXPECT_EQ(reader.min_doc(), 0u);
  EXPECT_EQ(reader.max_doc(), 17u);
  EXPECT_EQ(reader.file_bytes(), total);

  for (std::size_t i = 0; i < terms.size(); ++i) {
    const auto ordinal = reader.find(terms[i]);
    ASSERT_TRUE(ordinal.has_value()) << terms[i];
    EXPECT_EQ(*ordinal, i);
    const auto m = reader.meta(*ordinal);
    EXPECT_EQ(m.count, 2u);
    EXPECT_EQ(m.min_doc, i);
    EXPECT_EQ(m.max_doc, i + 10);
    std::vector<std::uint32_t> ids, tfs;
    reader.decode(m, ids, tfs);
    EXPECT_EQ(ids, (std::vector<std::uint32_t>{static_cast<std::uint32_t>(i),
                                               static_cast<std::uint32_t>(i + 10)}));
    EXPECT_EQ(tfs, (std::vector<std::uint32_t>{1, 1}));
  }
  // Absent terms, including ones that fall before / between / after blocks.
  EXPECT_FALSE(reader.find("aaa").has_value());
  EXPECT_FALSE(reader.find("alder3").has_value());
  EXPECT_FALSE(reader.find("cedarw").has_value());
  EXPECT_FALSE(reader.find("zzz").has_value());

  // Enumeration yields every term in order with its ordinal.
  std::vector<std::string> seen;
  reader.for_each_term([&](std::string_view t, std::uint64_t ord) {
    EXPECT_EQ(ord, seen.size());
    seen.emplace_back(t);
    return true;
  });
  EXPECT_EQ(seen, terms);

  // Prefix scans work across block boundaries.
  EXPECT_EQ(reader.terms_with_prefix("alder"),
            (std::vector<std::string>{"alder", "alder2"}));
  EXPECT_EQ(reader.terms_with_prefix("cedar"),
            (std::vector<std::string>{"cedar", "cedarwood"}));
  EXPECT_EQ(reader.terms_with_prefix("").size(), terms.size());
  EXPECT_TRUE(reader.terms_with_prefix("oak").empty());
}

TEST(SegmentWriterReader, EmptySegmentRoundTrips) {
  TempDir dir("empty");
  const std::string path = dir.path() + "/e.seg";
  SegmentWriter writer(path, PostingCodec::kGamma);
  writer.finalize();
  const auto reader = SegmentReader::open(path);
  EXPECT_EQ(reader.term_count(), 0u);
  EXPECT_EQ(reader.codec(), PostingCodec::kGamma);
  EXPECT_FALSE(reader.find("anything").has_value());
  EXPECT_TRUE(reader.terms_with_prefix("").empty());
}

TEST(SegmentWriterReader, WriterRejectsUnsortedAndEmptyTerms) {
  TempDir dir("sorted");
  const auto blob = encode_list({1, 2});
  SegmentWriter writer(dir.path() + "/s.seg", PostingCodec::kVByte);
  writer.add_term("m", blob.data(), blob.size(), 2, 1, 2);
  EXPECT_DEATH(writer.add_term("a", blob.data(), blob.size(), 2, 1, 2), "sorted");
  EXPECT_DEATH(writer.add_term("m", blob.data(), blob.size(), 2, 1, 2), "sorted");
  EXPECT_DEATH(writer.add_term("z", blob.data(), 0, 0, 0, 0), "postings");
}

// ------------------------------------------------ fold equivalence

/// Corpus across several container files → several run files, with shared
/// vocabulary so the segment fold concatenates partial lists across runs.
class SegmentEquivalenceFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    dir_ = new TempDir("equiv");
    index_dir_ = dir_->path() + "/index";
    std::vector<std::string> files;
    std::uint32_t doc_id = 0;
    for (int f = 0; f < 3; ++f) {
      std::vector<Document> docs;
      for (int d = 0; d < 12; ++d) {
        std::string body = "shared common everywhere";
        body += " file" + std::to_string(f) + "only";
        if (d % 2 == 0) body += " evens alternating";
        if (d % 3 == 0) body += " thirds";
        body += " doc" + std::to_string(doc_id) + "unique";
        docs.push_back({doc_id, "http://x/" + std::to_string(doc_id), body});
        ++doc_id;
      }
      const auto file = dir_->path() + "/c" + std::to_string(f) + ".hdc";
      container_write(file, docs);
      files.push_back(file);
    }
    IndexBuilder builder;
    builder.parsers(1).cpu_indexers(1).gpus(1);
    builder.config().parser.record_positions = true;
    builder.build(files, index_dir_);
    stats_ = compact_index(index_dir_).value();
  }
  static void TearDownTestSuite() {
    delete dir_;
    dir_ = nullptr;
  }

  static inline TempDir* dir_ = nullptr;
  static inline std::string index_dir_;
  static inline SegmentBuildStats stats_;
};

TEST_F(SegmentEquivalenceFixture, CompactionFoldsAllRuns) {
  EXPECT_EQ(stats_.runs, 3u);
  EXPECT_GT(stats_.terms, 0u);
  EXPECT_GT(stats_.postings, stats_.terms);  // shared terms span many docs
  EXPECT_TRUE(file_exists(IndexLayout::segment_path(index_dir_)));
  EXPECT_GT(stats_.output_bytes, 0u);
}

TEST_F(SegmentEquivalenceFixture, AutoOpenPrefersSegment) {
  const auto index = InvertedIndex::open(index_dir_, {}).value();
  EXPECT_TRUE(index.segment_backed());
  ASSERT_NE(index.segment(), nullptr);
  EXPECT_EQ(index.run_count(), 0u);
  const auto legacy = InvertedIndex::open(index_dir_, {IndexBackend::kRuns}).value();
  EXPECT_FALSE(legacy.segment_backed());
  EXPECT_EQ(legacy.segment(), nullptr);
  EXPECT_EQ(legacy.run_count(), 3u);
  EXPECT_EQ(index.term_count(), legacy.term_count());
}

TEST_F(SegmentEquivalenceFixture, EntriesRequiresRunBackend) {
  const auto index = InvertedIndex::open(index_dir_, {IndexBackend::kSegment}).value();
  EXPECT_DEATH((void)index.entries(), "run-file backend");
}

TEST_F(SegmentEquivalenceFixture, LookupsMatchLegacyForEveryTerm) {
  const auto segment = InvertedIndex::open(index_dir_, {IndexBackend::kSegment}).value();
  const auto legacy = InvertedIndex::open(index_dir_, {IndexBackend::kRuns}).value();
  std::size_t checked = 0;
  legacy.for_each_term([&](std::string_view term) {
    const auto a = legacy.lookup(term);
    const auto b = segment.lookup(term);
    ASSERT_TRUE(a.has_value() && b.has_value()) << term;
    EXPECT_EQ(a->doc_ids, b->doc_ids) << term;
    EXPECT_EQ(a->tfs, b->tfs) << term;
    const auto ap = legacy.lookup_positional(term);
    const auto bp = segment.lookup_positional(term);
    ASSERT_TRUE(ap.has_value() && bp.has_value()) << term;
    EXPECT_EQ(ap->positions, bp->positions) << term;
    ++checked;
  });
  EXPECT_EQ(checked, legacy.term_count());
  EXPECT_FALSE(segment.lookup("zzzznope").has_value());
  EXPECT_FALSE(legacy.lookup("zzzznope").has_value());
}

TEST_F(SegmentEquivalenceFixture, RangeLookupsMatchLegacy) {
  const auto segment = InvertedIndex::open(index_dir_, {IndexBackend::kSegment}).value();
  const auto legacy = InvertedIndex::open(index_dir_, {IndexBackend::kRuns}).value();
  const std::string shared = normalize_term("shared");
  const struct {
    std::uint32_t lo, hi;
  } ranges[] = {{0, 35}, {0, 11}, {12, 23}, {5, 30}, {30, 35}, {100, 200}};
  for (const auto& r : ranges) {
    const auto a = legacy.lookup_range(shared, r.lo, r.hi);
    const auto b = segment.lookup_range(shared, r.lo, r.hi);
    ASSERT_TRUE(a.has_value() && b.has_value());
    EXPECT_EQ(a->doc_ids, b->doc_ids) << r.lo << ".." << r.hi;
    EXPECT_EQ(a->tfs, b->tfs);
  }
  // Segment-backed narrowing: a non-overlapping range skips the decode and
  // reports zero blobs touched (the term still exists → not nullopt).
  std::size_t touched = 99;
  const auto out = segment.lookup_range(shared, 1000, 2000, &touched);
  ASSERT_TRUE(out.has_value());
  EXPECT_TRUE(out->doc_ids.empty());
  EXPECT_EQ(touched, 0u);
  EXPECT_FALSE(segment.lookup_range("zzzznope", 0, 10, &touched).has_value());
  EXPECT_EQ(touched, 0u);
}

TEST_F(SegmentEquivalenceFixture, PrefixScansMatchLegacy) {
  const auto segment = InvertedIndex::open(index_dir_, {IndexBackend::kSegment}).value();
  const auto legacy = InvertedIndex::open(index_dir_, {IndexBackend::kRuns}).value();
  for (const std::string prefix : {"", "s", "file", "doc1", "zzz"}) {
    EXPECT_EQ(segment.terms_with_prefix(prefix), legacy.terms_with_prefix(prefix))
        << "prefix '" << prefix << "'";
  }
}

TEST_F(SegmentEquivalenceFixture, ReadMetricsAccumulate) {
  const auto index = InvertedIndex::open(index_dir_, {IndexBackend::kSegment}).value();
  (void)index.lookup(normalize_term("shared"));
  (void)index.lookup("zzzznope");
  const auto snap = index.metrics().snapshot();
  EXPECT_EQ(snap.counter("query_lookups_total"), 2u);
  EXPECT_EQ(snap.counter("query_lookup_misses_total"), 1u);
  EXPECT_GT(snap.counter("query_postings_decoded_total"), 0u);
  EXPECT_GT(snap.counter("query_bytes_decoded_total"), 0u);
  const auto* mapped = snap.gauge("segment_bytes_mapped");
  ASSERT_NE(mapped, nullptr);
  EXPECT_EQ(static_cast<std::uint64_t>(mapped->value), index.segment()->mapped_bytes());
}

// ------------------------------------------------ corruption

class SegmentCorruptionFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::make_unique<TempDir>("corrupt");
    seg_path_ = dir_->path() + "/c.seg";
    SegmentWriter writer(seg_path_, PostingCodec::kVByte);
    const std::vector<std::string> sorted = {"alpha", "beta", "delta", "gamma", "omega"};
    for (const auto& term : sorted) {
      const auto blob = encode_list({1, 5, 9});
      writer.add_term(term, blob.data(), blob.size(), 3, 1, 9);
    }
    writer.finalize();
  }

  /// XORs one byte at `offset` (negative = from end).
  void flip(std::ptrdiff_t offset) {
    auto data = read_file(seg_path_);
    const std::size_t at = offset >= 0 ? static_cast<std::size_t>(offset)
                                       : data.size() + offset;
    ASSERT_LT(at, data.size());
    data[at] ^= 0x5A;
    write_file(seg_path_, data);
  }

  /// Recomputes the footer CRC so header/section tampering survives the
  /// checksum and exercises the structural checks behind it.
  void fix_crc() {
    auto data = read_file(seg_path_);
    const std::uint32_t crc = crc32(data.data(), data.size() - 16);
    std::memcpy(data.data() + data.size() - 8, &crc, 4);
    write_file(seg_path_, data);
  }

  std::unique_ptr<TempDir> dir_;
  std::string seg_path_;
};

TEST_F(SegmentCorruptionFixture, TruncatedFileDies) {
  auto data = read_file(seg_path_);
  data.resize(data.size() / 2);
  write_file(seg_path_, data);
  EXPECT_DEATH((void)SegmentReader::open(seg_path_), "footer|truncated");
  data.resize(10);
  write_file(seg_path_, data);
  EXPECT_DEATH((void)SegmentReader::open(seg_path_), "too small");
}

TEST_F(SegmentCorruptionFixture, BitFlippedBlobDies) {
  flip(-20);  // inside the blob area, just before the footer
  EXPECT_DEATH((void)SegmentReader::open(seg_path_), "corruption|crc");
}

TEST_F(SegmentCorruptionFixture, BitFlippedHeaderDies) {
  flip(0);
  EXPECT_DEATH((void)SegmentReader::open(seg_path_), "corruption|crc");
}

TEST_F(SegmentCorruptionFixture, BadFooterCrcDies) {
  flip(-6);  // inside the stored CRC field
  EXPECT_DEATH((void)SegmentReader::open(seg_path_), "corruption|crc");
}

TEST_F(SegmentCorruptionFixture, BadFooterMagicDies) {
  flip(-1);
  EXPECT_DEATH((void)SegmentReader::open(seg_path_), "footer magic");
}

TEST_F(SegmentCorruptionFixture, WrongMagicWithValidCrcDies) {
  flip(0);
  fix_crc();
  EXPECT_DEATH((void)SegmentReader::open(seg_path_), "not a hetindex segment");
}

TEST_F(SegmentCorruptionFixture, WrongVersionWithValidCrcDies) {
  flip(4);
  fix_crc();
  EXPECT_DEATH((void)SegmentReader::open(seg_path_), "segment version");
}

TEST_F(SegmentCorruptionFixture, TamperedSectionBoundsDie) {
  // Grow dict_bytes (u64 at offset 40) past the file end; CRC is repaired
  // so only the bounds check can catch it.
  auto data = read_file(seg_path_);
  std::uint64_t dict_bytes = 0;
  std::memcpy(&dict_bytes, data.data() + 40, 8);
  dict_bytes += 1 << 20;
  std::memcpy(data.data() + 40, &dict_bytes, 8);
  write_file(seg_path_, data);
  fix_crc();
  EXPECT_DEATH((void)SegmentReader::open(seg_path_), "section out of bounds");
}

TEST_F(SegmentCorruptionFixture, MissingFileDies) {
  EXPECT_DEATH((void)SegmentReader::open(dir_->path() + "/nope.seg"),
               "cannot open|cannot read");
}

// ------------------------------------------------ concurrent readers

TEST_F(SegmentEquivalenceFixture, ConcurrentReadersMatchLegacy) {
  // Expected answers collected single-threaded from the legacy backend.
  const auto legacy = InvertedIndex::open(index_dir_, {IndexBackend::kRuns}).value();
  std::vector<std::string> terms;
  legacy.for_each_term([&](std::string_view t) { terms.emplace_back(t); });
  std::vector<QueryPostings> expected;
  expected.reserve(terms.size());
  for (const auto& t : terms) expected.push_back(*legacy.lookup(t));

  // One shared reader, no locks: lookups, range lookups and prefix scans
  // hammered from many threads must all agree with the legacy answers.
  const auto index = InvertedIndex::open(index_dir_, {IndexBackend::kSegment}).value();
  constexpr int kThreads = 8;
  constexpr int kIters = 150;
  std::atomic<int> failures{0};
  {
    std::vector<std::jthread> workers;
    workers.reserve(kThreads);
    for (int w = 0; w < kThreads; ++w) {
      workers.emplace_back([&, w] {
        for (int i = 0; i < kIters; ++i) {
          const std::size_t k = static_cast<std::size_t>(w + i) % terms.size();
          const auto got = index.lookup(terms[k]);
          if (!got || got->doc_ids != expected[k].doc_ids ||
              got->tfs != expected[k].tfs) {
            failures.fetch_add(1, std::memory_order_relaxed);
          }
          if (index.lookup("zzzznope").has_value()) {
            failures.fetch_add(1, std::memory_order_relaxed);
          }
          const auto ranged = index.lookup_range(terms[k], 0, 11);
          if (!ranged || ranged->doc_ids.size() > expected[k].doc_ids.size()) {
            failures.fetch_add(1, std::memory_order_relaxed);
          }
          if (i % 25 == 0 &&
              index.terms_with_prefix("doc").empty()) {
            failures.fetch_add(1, std::memory_order_relaxed);
          }
        }
      });
    }
  }
  EXPECT_EQ(failures.load(), 0);
  const auto snap = index.metrics().snapshot();
  EXPECT_EQ(snap.counter("query_lookups_total"),
            static_cast<std::uint64_t>(kThreads) * kIters * 3);
}

}  // namespace
}  // namespace hetindex
