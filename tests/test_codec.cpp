// Unit + property tests for the codec substrate: variable-byte, Elias-γ,
// Golomb, posting-list gap encoding, the LZ container codec and dictionary
// front-coding.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>

#include "codec/bit_io.hpp"
#include "codec/front_coding.hpp"
#include "codec/lz.hpp"
#include "codec/posting_codecs.hpp"
#include "util/rng.hpp"

namespace hetindex {
namespace {

TEST(VByte, SmallValuesUseOneByte) {
  std::vector<std::uint8_t> out;
  vbyte_encode(127, out);
  EXPECT_EQ(out.size(), 1u);
  vbyte_encode(128, out);
  EXPECT_EQ(out.size(), 3u);
}

TEST(VByte, RoundTripEdgeValues) {
  for (std::uint64_t v : {0ull, 1ull, 127ull, 128ull, 16383ull, 16384ull,
                          0xFFFFFFFFull, 0xFFFFFFFFFFFFFFFFull}) {
    std::vector<std::uint8_t> out;
    vbyte_encode(v, out);
    std::size_t pos = 0;
    EXPECT_EQ(vbyte_decode(out.data(), out.size(), pos), v);
    EXPECT_EQ(pos, out.size());
  }
}

TEST(VByte, RoundTripRandomSequence) {
  Rng rng(11);
  std::vector<std::uint64_t> values;
  std::vector<std::uint8_t> out;
  for (int i = 0; i < 5000; ++i) {
    const std::uint64_t v = rng() >> (rng.below(64));
    values.push_back(v);
    vbyte_encode(v, out);
  }
  std::size_t pos = 0;
  for (auto v : values) EXPECT_EQ(vbyte_decode(out.data(), out.size(), pos), v);
  EXPECT_EQ(pos, out.size());
}

TEST(BitIo, WriteReadMixedWidths) {
  std::vector<std::uint8_t> buf;
  BitWriter bw(buf);
  bw.write(0b101, 3);
  bw.write_unary(5);
  bw.write(0xABCD, 16);
  bw.write_unary(0);
  bw.flush();
  BitReader br(buf.data(), buf.size());
  EXPECT_EQ(br.read(3), 0b101u);
  EXPECT_EQ(br.read_unary(), 5u);
  EXPECT_EQ(br.read(16), 0xABCDu);
  EXPECT_EQ(br.read_unary(), 0u);
}

TEST(Gamma, KnownCodeLengths) {
  // γ(1) = 1 bit, γ(2..3) = 3 bits, γ(4..7) = 5 bits.
  EXPECT_EQ(gamma_encode_sequence({1}).size(), 1u);           // 1 bit → 1 byte
  const auto eight = gamma_encode_sequence({1, 1, 1, 1, 1, 1, 1, 1});
  EXPECT_EQ(eight.size(), 1u);  // 8×1 bit packs into one byte
}

TEST(Gamma, RoundTripRange) {
  std::vector<std::uint64_t> values;
  for (std::uint64_t v = 1; v < 2000; ++v) values.push_back(v);
  const auto enc = gamma_encode_sequence(values);
  EXPECT_EQ(gamma_decode_sequence(enc, values.size()), values);
}

TEST(Gamma, RoundTripLargeValues) {
  std::vector<std::uint64_t> values = {1ull << 20, (1ull << 31) - 1, 1ull << 40,
                                       (1ull << 62) + 12345};
  const auto enc = gamma_encode_sequence(values);
  EXPECT_EQ(gamma_decode_sequence(enc, values.size()), values);
}

class GolombParam : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GolombParam, RoundTripAcrossParameters) {
  const std::uint64_t b = GetParam();
  Rng rng(b);
  std::vector<std::uint64_t> values;
  for (int i = 0; i < 2000; ++i) values.push_back(1 + rng.below(10 * b + 50));
  const auto enc = golomb_encode_sequence(values, b);
  EXPECT_EQ(golomb_decode_sequence(enc, values.size(), b), values);
}

INSTANTIATE_TEST_SUITE_P(AllB, GolombParam,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8, 13, 16, 100, 1000));

TEST(Golomb, OptimalParameterFormula) {
  EXPECT_EQ(golomb_optimal_b(1.0), 1u);
  EXPECT_EQ(golomb_optimal_b(100.0), 69u);
  EXPECT_EQ(golomb_optimal_b(0.1), 1u);
}

class PostingCodecParam : public ::testing::TestWithParam<PostingCodec> {};

TEST_P(PostingCodecParam, RoundTripEmpty) {
  const auto enc = encode_postings(GetParam(), {}, {});
  std::vector<std::uint32_t> ids, tfs;
  decode_postings(enc.data(), enc.size(), ids, tfs);
  EXPECT_TRUE(ids.empty());
  EXPECT_TRUE(tfs.empty());
}

TEST_P(PostingCodecParam, RoundTripSingle) {
  const auto enc = encode_postings(GetParam(), {42}, {7});
  std::vector<std::uint32_t> ids, tfs;
  decode_postings(enc.data(), enc.size(), ids, tfs);
  EXPECT_EQ(ids, std::vector<std::uint32_t>{42});
  EXPECT_EQ(tfs, std::vector<std::uint32_t>{7});
}

TEST_P(PostingCodecParam, RoundTripDocIdZero) {
  const auto enc = encode_postings(GetParam(), {0, 1}, {1, 2});
  std::vector<std::uint32_t> ids, tfs;
  decode_postings(enc.data(), enc.size(), ids, tfs);
  EXPECT_EQ(ids, (std::vector<std::uint32_t>{0, 1}));
}

TEST_P(PostingCodecParam, RoundTripRandomSortedLists) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 99);
  for (int trial = 0; trial < 20; ++trial) {
    std::set<std::uint32_t> id_set;
    const std::size_t n = 1 + rng.below(500);
    while (id_set.size() < n) id_set.insert(static_cast<std::uint32_t>(rng.below(1u << 30)));
    std::vector<std::uint32_t> ids(id_set.begin(), id_set.end());
    std::vector<std::uint32_t> tfs;
    for (std::size_t i = 0; i < ids.size(); ++i)
      tfs.push_back(1 + static_cast<std::uint32_t>(rng.below(50)));
    const auto enc = encode_postings(GetParam(), ids, tfs);
    std::vector<std::uint32_t> ids2, tfs2;
    decode_postings(enc.data(), enc.size(), ids2, tfs2);
    EXPECT_EQ(ids2, ids);
    EXPECT_EQ(tfs2, tfs);
  }
}

TEST_P(PostingCodecParam, DenseListsCompressBelowRaw) {
  // Gap coding should beat 8 bytes/posting on dense lists.
  std::vector<std::uint32_t> ids, tfs;
  for (std::uint32_t i = 0; i < 10000; ++i) {
    ids.push_back(i * 3);
    tfs.push_back(1 + i % 4);
  }
  const auto enc = encode_postings(GetParam(), ids, tfs);
  EXPECT_LT(enc.size(), ids.size() * 8);
}

INSTANTIATE_TEST_SUITE_P(AllCodecs, PostingCodecParam,
                         ::testing::Values(PostingCodec::kVByte, PostingCodec::kGamma,
                                           PostingCodec::kGolomb,
                                           PostingCodec::kBitPacked));

TEST_P(PostingCodecParam, ConcatenatedSegmentsDecodeInSequence) {
  // The §III.F byte-level merge relies on this: encoded lists concatenate
  // and decode back-to-back because each segment's first doc id is
  // absolute and every segment is byte-aligned.
  const auto seg1 = encode_postings(GetParam(), {1, 5}, {1, 2});
  const auto seg2 = encode_postings(GetParam(), {9, 12}, {3, 1});
  std::vector<std::uint8_t> blob = seg1;
  blob.insert(blob.end(), seg2.begin(), seg2.end());
  std::vector<std::uint32_t> ids, tfs;
  std::size_t pos = 0;
  while (pos < blob.size())
    pos += decode_postings(blob.data(), blob.size(), ids, tfs, nullptr, pos);
  EXPECT_EQ(pos, blob.size());
  EXPECT_EQ(ids, (std::vector<std::uint32_t>{1, 5, 9, 12}));
  EXPECT_EQ(tfs, (std::vector<std::uint32_t>{1, 2, 3, 1}));
}

TEST_P(PostingCodecParam, DecodeReportsConsumedBytes) {
  const auto enc = encode_postings(GetParam(), {7, 8, 100}, {1, 1, 4});
  std::vector<std::uint32_t> ids, tfs;
  EXPECT_EQ(decode_postings(enc.data(), enc.size(), ids, tfs), enc.size());
}

TEST(BlockedPostings, ChunksIntoBlocksWithExactSkipRows) {
  std::vector<std::uint32_t> ids, tfs;
  for (std::uint32_t i = 0; i < 300; ++i) {
    ids.push_back(i * 2 + 1);
    tfs.push_back(1 + i % 7);
  }
  std::vector<PostingBlockEntry> blocks;
  const auto enc = encode_postings_blocked(PostingCodec::kGolomb, ids, tfs,
                                           nullptr, &blocks);
  ASSERT_EQ(blocks.size(), 3u);  // 128 + 128 + 44
  std::uint64_t expect_offset = 0;
  std::size_t seen = 0;
  for (const auto& b : blocks) {
    EXPECT_EQ(b.offset, expect_offset);
    expect_offset += b.bytes;
    ASSERT_GT(b.count, 0u);
    ASSERT_LE(b.count, kPostingsBlockSize);
    const std::uint32_t expect_max =
        *std::max_element(tfs.begin() + seen, tfs.begin() + seen + b.count);
    EXPECT_EQ(b.max_tf, expect_max);
    seen += b.count;
    EXPECT_EQ(b.last_doc, ids[seen - 1]);
  }
  EXPECT_EQ(seen, ids.size());
  EXPECT_EQ(expect_offset, enc.size());
  // The whole blob decodes back-to-back like any §III.F-merged list…
  std::vector<std::uint32_t> ids2, tfs2;
  std::size_t pos = 0;
  while (pos < enc.size())
    pos += decode_postings(enc.data(), enc.size(), ids2, tfs2, nullptr, pos);
  EXPECT_EQ(ids2, ids);
  EXPECT_EQ(tfs2, tfs);
  // …and each block also decodes standalone through its skip row.
  std::vector<std::uint32_t> bids, btfs;
  EXPECT_EQ(decode_postings(enc.data() + blocks[1].offset, blocks[1].bytes, bids, btfs),
            static_cast<std::size_t>(blocks[1].bytes));
  EXPECT_EQ(bids.size(), blocks[1].count);
  EXPECT_EQ(bids.front(), ids[kPostingsBlockSize]);
  EXPECT_EQ(bids.back(), blocks[1].last_doc);
}

TEST(BlockedPostings, BlockedEncodingMatchesFlatForEveryCodec) {
  Rng rng(7);
  std::set<std::uint32_t> id_set;
  while (id_set.size() < 1000) id_set.insert(static_cast<std::uint32_t>(rng.below(1u << 24)));
  std::vector<std::uint32_t> ids(id_set.begin(), id_set.end());
  std::vector<std::uint32_t> tfs;
  for (std::size_t i = 0; i < ids.size(); ++i)
    tfs.push_back(1 + static_cast<std::uint32_t>(rng.below(30)));
  for (PostingCodec codec : {PostingCodec::kVByte, PostingCodec::kGamma,
                             PostingCodec::kGolomb, PostingCodec::kBitPacked}) {
    const auto enc = encode_postings_blocked(codec, ids, tfs);
    std::vector<std::uint32_t> ids2, tfs2;
    std::size_t pos = 0;
    while (pos < enc.size())
      pos += decode_postings(enc.data(), enc.size(), ids2, tfs2, nullptr, pos);
    EXPECT_EQ(ids2, ids);
    EXPECT_EQ(tfs2, tfs);
  }
}

TEST(BlockedPostings, DensityHeuristicUpgradesVByteOnly) {
  // Dense block, uniform small values: fixed-width packing beats vbyte.
  std::vector<std::uint32_t> dense_ids, dense_tfs;
  for (std::uint32_t i = 0; i < 128; ++i) {
    dense_ids.push_back(i);
    dense_tfs.push_back(1);
  }
  EXPECT_EQ(choose_block_codec(PostingCodec::kVByte, dense_ids, dense_tfs, false),
            PostingCodec::kBitPacked);
  // One huge gap inflates the fixed width past what vbyte pays: no upgrade.
  std::vector<std::uint32_t> skewed_ids = dense_ids, skewed_tfs = dense_tfs;
  skewed_ids.push_back((1u << 30) + 5);
  skewed_tfs.push_back(1);
  EXPECT_EQ(choose_block_codec(PostingCodec::kVByte, skewed_ids, skewed_tfs, false),
            PostingCodec::kVByte);
  // Positional blocks and non-vbyte requests pass through unchanged.
  EXPECT_EQ(choose_block_codec(PostingCodec::kVByte, dense_ids, dense_tfs, true),
            PostingCodec::kVByte);
  EXPECT_EQ(choose_block_codec(PostingCodec::kGolomb, dense_ids, dense_tfs, false),
            PostingCodec::kGolomb);
}

TEST(Lz, RoundTripEmpty) {
  const std::vector<std::uint8_t> empty;
  EXPECT_EQ(lz_decompress(lz_compress(empty)), empty);
}

TEST(Lz, RoundTripShortLiteral) {
  std::vector<std::uint8_t> data = {'a', 'b', 'c'};
  EXPECT_EQ(lz_decompress(lz_compress(data)), data);
}

TEST(Lz, CompressesRepetitiveText) {
  std::string text;
  for (int i = 0; i < 2000; ++i) text += "the quick brown fox jumps over the lazy dog ";
  std::vector<std::uint8_t> data(text.begin(), text.end());
  const auto comp = lz_compress(data);
  EXPECT_LT(comp.size(), data.size() / 5);
  EXPECT_EQ(lz_decompress(comp), data);
}

TEST(Lz, HandlesIncompressibleData) {
  Rng rng(17);
  std::vector<std::uint8_t> data(100000);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng());
  const auto comp = lz_compress(data);
  EXPECT_EQ(lz_decompress(comp), data);
  EXPECT_LT(comp.size(), data.size() + 1024);  // stored blocks add only headers
}

TEST(Lz, RoundTripRunLengthOverlappingMatches) {
  std::vector<std::uint8_t> data(50000, 'x');  // self-overlapping match case
  const auto comp = lz_compress(data);
  EXPECT_LT(comp.size(), 1024u);
  EXPECT_EQ(lz_decompress(comp), data);
}

TEST(Lz, RoundTripMultiBlockInput) {
  Rng rng(23);
  std::string text;
  const char* words[] = {"alpha", "beta", "gamma", "delta", "epsilon"};
  while (text.size() < (3u << 20)) {  // > 2 blocks
    text += words[rng.below(5)];
    text += ' ';
  }
  std::vector<std::uint8_t> data(text.begin(), text.end());
  const auto comp = lz_compress(data);
  EXPECT_EQ(lz_decompress(comp), data);
  EXPECT_EQ(lz_raw_size(comp.data(), comp.size()), data.size());
}

TEST(Lz, DetectsCorruption) {
  std::string text(10000, 'a');
  for (std::size_t i = 0; i < text.size(); i += 7) text[i] = 'b';
  std::vector<std::uint8_t> data(text.begin(), text.end());
  auto comp = lz_compress(data);
  comp[comp.size() / 2] ^= 0xFF;
  EXPECT_DEATH((void)lz_decompress(comp), "lz");
}

TEST(FrontCoding, CommonPrefixLength) {
  EXPECT_EQ(common_prefix_length("", ""), 0u);
  EXPECT_EQ(common_prefix_length("abc", "abd"), 2u);
  EXPECT_EQ(common_prefix_length("abc", "abc"), 3u);
  EXPECT_EQ(common_prefix_length("abc", "abcdef"), 3u);
}

TEST(FrontCoding, RoundTripSortedTerms) {
  std::vector<std::string> terms = {"", "a", "aardvark", "aardwolf", "ab", "abandon",
                                    "abandoned", "zebra", "zoo"};
  const auto block = front_code(terms);
  EXPECT_EQ(front_decode(block, terms.size()), terms);
}

TEST(FrontCoding, CompressesSharedPrefixes) {
  std::vector<std::string> terms;
  for (int i = 0; i < 1000; ++i) terms.push_back("prefixsharedbyall" + std::to_string(i));
  std::sort(terms.begin(), terms.end());
  std::size_t raw = 0;
  for (const auto& t : terms) raw += t.size() + 4;
  const auto block = front_code(terms);
  EXPECT_LT(block.size(), raw / 3);
  EXPECT_EQ(front_decode(block, terms.size()), terms);
}

TEST(FrontCoding, RejectsUnsortedInput) {
  EXPECT_DEATH((void)front_code({"b", "a"}), "sorted");
}

}  // namespace
}  // namespace hetindex
