// Search-serving tests (docs/SERVING.md): ranked-result equivalence
// between the Block-Max MaxScore executor and the exhaustive baseline on
// randomized corpora (batch and live backends, with and without
// score-bound sidecars; tests/test_block_max.cpp extends this across
// merges and skip-table variants), the per-snapshot collection-stats
// cache (the recompute counter must stay flat across queries),
// result-cache hits and implicit invalidation across snapshot changes,
// admission control (shed when the queue saturates, reject when a
// deadline expires while queued), the max-tf and block-index sidecar
// formats and their propagation through merges, and searches racing live
// flush/compaction (the TSan tier-1 leg runs this file).

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <random>
#include <semaphore>
#include <string>
#include <thread>
#include <vector>

#include "core/hetindex.hpp"

namespace hetindex {
namespace {

using namespace std::chrono_literals;

class TempDir {
 public:
  explicit TempDir(const std::string& tag) {
    path_ = (std::filesystem::temp_directory_path() /
             ("hetindex_serve_" + tag + "_" + std::to_string(counter_++)))
                .string();
    std::filesystem::create_directories(path_);
  }
  ~TempDir() { std::filesystem::remove_all(path_); }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  static inline int counter_ = 0;
  std::string path_;
};

struct Corpus {
  std::vector<std::string> files;
  std::vector<Document> docs;
};

Corpus make_corpus(const std::string& dir, std::uint64_t bytes, std::uint64_t seed) {
  CollectionSpec spec = wikipedia_like();
  spec.total_bytes = bytes;
  spec.seed = seed;
  const auto coll = generate_collection(spec, dir);
  Corpus corpus;
  corpus.files = coll.paths();
  for (const auto& file : corpus.files) {
    for (auto& doc : container_read(file)) corpus.docs.push_back(std::move(doc));
  }
  return corpus;
}

/// Random mixed-frequency term sets drawn from the index dictionary, the
/// query workload of every equivalence test. Seeded so failures reproduce.
std::vector<std::vector<std::string>> sample_queries(
    const std::vector<std::string>& vocabulary, std::size_t count, std::uint32_t seed) {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<std::size_t> pick(0, vocabulary.size() - 1);
  std::uniform_int_distribution<std::size_t> arity(1, 5);
  std::vector<std::vector<std::string>> queries;
  queries.reserve(count);
  for (std::size_t q = 0; q < count; ++q) {
    std::vector<std::string> terms;
    const std::size_t n = arity(rng);
    for (std::size_t t = 0; t < n; ++t) terms.push_back(vocabulary[pick(rng)]);
    queries.push_back(std::move(terms));
  }
  return queries;
}

std::vector<std::string> batch_vocabulary(const InvertedIndex& index) {
  std::vector<std::string> vocab;
  vocab.reserve(index.term_count());
  index.for_each_term([&vocab](std::string_view term) { vocab.emplace_back(term); });
  return vocab;
}

/// MaxScore pruning must be invisible: identical docs, identical order,
/// bit-identical scores (both engines sum the same contributions in the
/// same order).
void expect_identical_rankings(const Searcher& searcher,
                               const std::vector<std::vector<std::string>>& queries,
                               std::size_t k) {
  for (const auto& terms : queries) {
    QueryRequest fast;
    fast.query = Query::bag(terms);
    fast.k = k;
    fast.use_result_cache = false;
    QueryRequest slow = fast;
    slow.exhaustive = true;
    const auto a = searcher.search(fast);
    const auto b = searcher.search(slow);
    ASSERT_TRUE(a.has_value());
    ASSERT_TRUE(b.has_value());
    ASSERT_EQ(a.value().hits.size(), b.value().hits.size());
    for (std::size_t i = 0; i < a.value().hits.size(); ++i) {
      EXPECT_EQ(a.value().hits[i].doc_id, b.value().hits[i].doc_id)
          << "rank " << i << " k=" << k;
      EXPECT_EQ(a.value().hits[i].score, b.value().hits[i].score)
          << "rank " << i << " k=" << k;
    }
  }
}

// ---------------------------------------- MaxScore == exhaustive baseline

class BatchServeFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    corpus_dir_ = new TempDir("corpus");
    index_dir_ = new TempDir("index");
    const auto corpus = make_corpus(corpus_dir_->path(), 512 << 10, 0xBEEF);
    IndexBuilder builder;
    builder.parsers(2).cpu_indexers(2).emit_segment(true);
    builder.build(corpus.files, index_dir_->path());
  }
  static void TearDownTestSuite() {
    delete corpus_dir_;
    delete index_dir_;
    corpus_dir_ = index_dir_ = nullptr;
  }
  static inline TempDir* corpus_dir_ = nullptr;
  static inline TempDir* index_dir_ = nullptr;
};

TEST_F(BatchServeFixture, MaxScoreMatchesExhaustiveOnRandomQueries) {
  const auto index = InvertedIndex::open(index_dir_->path(), {}).value();
  ASSERT_TRUE(index.has_score_bounds());  // built segments carry the sidecar
  const auto docs = DocMap::open(doc_map_path(index_dir_->path()));
  const auto searcher_ptr = Searcher::open(SearchSource::batch(index, docs)).value();
  const Searcher& searcher = *searcher_ptr;
  const auto queries = sample_queries(batch_vocabulary(index), 40, 1);
  for (const std::size_t k : {1u, 3u, 10u, 100u}) {
    expect_identical_rankings(searcher, queries, k);
  }
}

TEST_F(BatchServeFixture, MaxScoreMatchesExhaustiveWithoutSidecar) {
  // Remove the sidecar: bounds fall back to the loose idf·(k1+1) cap,
  // which must change nothing but pruning effectiveness.
  TempDir copy("nosidecar");
  std::filesystem::copy(index_dir_->path(), copy.path(),
                        std::filesystem::copy_options::recursive |
                            std::filesystem::copy_options::overwrite_existing);
  std::filesystem::remove(
      max_tf_sidecar_path(IndexLayout::segment_path(copy.path())));
  const auto index = InvertedIndex::open(copy.path(), {}).value();
  EXPECT_FALSE(index.has_score_bounds());
  const auto docs = DocMap::open(doc_map_path(copy.path()));
  const auto searcher_ptr = Searcher::open(SearchSource::batch(index, docs)).value();
  const Searcher& searcher = *searcher_ptr;
  expect_identical_rankings(searcher, sample_queries(batch_vocabulary(index), 20, 2),
                            10);
}

TEST_F(BatchServeFixture, ConjunctiveCursorsMatchDecodedIntersection) {
  // The cursor-driven intersection must agree with the boolean operators
  // over fully decoded lists — same docs, same summed tfs.
  const auto index = InvertedIndex::open(index_dir_->path(), {}).value();
  const auto docs = DocMap::open(doc_map_path(index_dir_->path()));
  const auto searcher_ptr = Searcher::open(SearchSource::batch(index, docs)).value();
  const Searcher& searcher = *searcher_ptr;
  const auto queries = sample_queries(batch_vocabulary(index), 10, 3);
  for (const auto& terms : queries) {
    std::optional<QueryPostings> joint;
    bool all_present = true;
    for (const auto& term : terms) {
      auto p = index.lookup(term);
      if (!p.has_value()) {
        all_present = false;
        break;
      }
      joint = joint ? postings_and(*joint, p.value()) : std::move(p);
    }
    QueryRequest conj;
    conj.query = Query::conjunction(terms);
    conj.k = static_cast<std::size_t>(index.term_count());  // no truncation
    const auto response = searcher.search(conj);
    ASSERT_TRUE(response.has_value());
    EXPECT_EQ(response.value().hits.size(),
              all_present && joint ? joint->doc_ids.size() : 0u);
  }
}

TEST(LiveServe, MaxScoreMatchesExhaustiveAcrossFlushAndCompaction) {
  TempDir corpus_dir("lcorpus");
  TempDir live_dir("llive");
  const auto corpus = make_corpus(corpus_dir.path(), 256 << 10, 0xF00D);
  IndexWriterOptions opts;
  opts.flush_threshold_bytes = 0;
  opts.background_compaction = false;
  auto writer = IndexWriter::open(live_dir.path(), opts);
  ASSERT_TRUE(writer.has_value());
  auto w = std::move(writer).value();
  std::mt19937 rng(7);
  for (const auto& doc : corpus.docs) {
    w.add_document(doc.url, doc.body);
    if (rng() % 11 == 0) w.flush();
  }
  w.flush();

  std::vector<std::string> vocab;
  const auto collect = [&vocab](const LiveSnapshot& snap) {
    vocab.clear();
    snap.for_each_term([&](std::string_view term) {
      vocab.emplace_back(term);
      return true;
    });
  };

  {  // multi-segment snapshot: per-segment sidecars bound the union
    const auto snap = w.snapshot();
    ASSERT_GT(snap->segments().size(), 1u);
    collect(*snap);
    const auto searcher_ptr = Searcher::open(SearchSource::snapshot(snap)).value();
    const Searcher& searcher = *searcher_ptr;
    expect_identical_rankings(searcher, sample_queries(vocab, 25, 4), 10);
  }

  w.compact_now();  // merged segments: sidecars propagated without decode
  const auto snap = w.snapshot();
  collect(*snap);
  const auto searcher_ptr = Searcher::open(SearchSource::snapshot(snap)).value();
  const Searcher& searcher = *searcher_ptr;
  expect_identical_rankings(searcher, sample_queries(vocab, 25, 5), 10);
}

// ------------------------------------------------- per-snapshot statistics

TEST_F(BatchServeFixture, CollectionStatsComputedOncePerSnapshot) {
  const auto index = InvertedIndex::open(index_dir_->path(), {}).value();
  const auto docs = DocMap::open(doc_map_path(index_dir_->path()));
  const auto searcher_ptr = Searcher::open(SearchSource::batch(index, docs)).value();
  const Searcher& searcher = *searcher_ptr;
  const auto queries = sample_queries(batch_vocabulary(index), 25, 6);
  for (const auto& terms : queries) {
    QueryRequest request;
    request.query = Query::bag(terms);
    request.use_result_cache = false;
    ASSERT_TRUE(searcher.search(request).has_value());
  }
  const auto snapshot = searcher.metrics().snapshot();
  EXPECT_EQ(snapshot.counter("search_queries_total"), queries.size());
  // The regression probe: N/avgdl were hoisted out of the per-query path.
  EXPECT_EQ(snapshot.counter("search_stats_recomputes_total"), 1u);
}

TEST(LiveServe, StatsRecomputeOnlyOnSnapshotChange) {
  TempDir corpus_dir("scorpus");
  TempDir live_dir("slive");
  const auto corpus = make_corpus(corpus_dir.path(), 64 << 10, 0xABBA);
  IndexWriterOptions opts;
  opts.flush_threshold_bytes = 0;
  opts.background_compaction = false;
  auto w = IndexWriter::open(live_dir.path(), opts).value();
  for (std::size_t i = 0; i < corpus.docs.size() / 2; ++i) {
    w.add_document(corpus.docs[i].url, corpus.docs[i].body);
  }
  w.flush();

  const auto searcher_ptr =
      Searcher::open(SearchSource::live([&w] { return w.snapshot(); })).value();
  const Searcher& searcher = *searcher_ptr;
  std::string term;
  w.snapshot()->for_each_term([&term](std::string_view t) {
    term = std::string(t);
    return false;
  });
  QueryRequest request;
  request.query = Query::term(term);
  request.use_result_cache = false;
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(searcher.search(request).has_value());
  EXPECT_EQ(searcher.metrics().snapshot().counter("search_stats_recomputes_total"), 1u);

  for (std::size_t i = corpus.docs.size() / 2; i < corpus.docs.size(); ++i) {
    w.add_document(corpus.docs[i].url, corpus.docs[i].body);
  }
  w.flush();  // new snapshot id → exactly one more recompute
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(searcher.search(request).has_value());
  EXPECT_EQ(searcher.metrics().snapshot().counter("search_stats_recomputes_total"), 2u);
}

// -------------------------------------------------------- result caching

TEST(LiveServe, ResultCacheHitsAndInvalidatesAcrossSnapshots) {
  TempDir corpus_dir("ccorpus");
  TempDir live_dir("clive");
  const auto corpus = make_corpus(corpus_dir.path(), 64 << 10, 0xCAC8E);
  IndexWriterOptions opts;
  opts.flush_threshold_bytes = 0;
  opts.background_compaction = false;
  auto w = IndexWriter::open(live_dir.path(), opts).value();
  for (const auto& doc : corpus.docs) w.add_document(doc.url, doc.body);
  w.flush();

  const auto searcher_ptr =
      Searcher::open(SearchSource::live([&w] { return w.snapshot(); })).value();
  const Searcher& searcher = *searcher_ptr;
  QueryRequest request;
  // Found only in the doc added later.
  request.query = Query::disjunction({"zebrasafari"});

  const auto miss = searcher.search(request);
  ASSERT_TRUE(miss.has_value());
  EXPECT_FALSE(miss.value().from_cache);
  EXPECT_TRUE(miss.value().hits.empty());

  const auto hit = searcher.search(request);
  ASSERT_TRUE(hit.has_value());
  EXPECT_TRUE(hit.value().from_cache);
  EXPECT_EQ(hit.value().snapshot_id, miss.value().snapshot_id);

  // New snapshot: same query must re-execute (key embeds the snapshot id)
  // and see the new document — the cache invalidates implicitly.
  w.add_document("http://x/new", "zebrasafari zebrasafari");
  w.flush();
  const auto fresh = searcher.search(request);
  ASSERT_TRUE(fresh.has_value());
  EXPECT_FALSE(fresh.value().from_cache);
  EXPECT_NE(fresh.value().snapshot_id, miss.value().snapshot_id);
  ASSERT_EQ(fresh.value().hits.size(), 1u);

  const auto snapshot = searcher.metrics().snapshot();
  EXPECT_EQ(snapshot.counter("search_result_cache_hits_total"), 1u);
  EXPECT_EQ(snapshot.counter("search_result_cache_misses_total"), 2u);

  // Opting out never reads nor fills the cache.
  request.use_result_cache = false;
  const auto bypass = searcher.search(request);
  ASSERT_TRUE(bypass.has_value());
  EXPECT_FALSE(bypass.value().from_cache);
  EXPECT_EQ(searcher.metrics().snapshot().counter("search_result_cache_hits_total"), 1u);
}

TEST_F(BatchServeFixture, PostingsCacheServesRepeatedTerms) {
  const auto index = InvertedIndex::open(index_dir_->path(), {}).value();
  const auto docs = DocMap::open(doc_map_path(index_dir_->path()));
  const auto searcher_ptr = Searcher::open(SearchSource::batch(index, docs)).value();
  const Searcher& searcher = *searcher_ptr;
  QueryRequest request;
  // Disjunctive mode: a decoded mode — the cursor modes (pruned ranked,
  // conjunctive) deliberately bypass this cache.
  request.query = Query::disjunction({batch_vocabulary(index).front(), "zzzznope"});
  request.use_result_cache = false;  // isolate the postings cache
  ASSERT_TRUE(searcher.search(request).has_value());
  ASSERT_TRUE(searcher.search(request).has_value());
  const auto snapshot = searcher.metrics().snapshot();
  // Second pass hits for both terms — including the negative "absent"
  // verdict for the unknown one.
  EXPECT_EQ(snapshot.counter("search_postings_cache_misses_total"), 2u);
  EXPECT_EQ(snapshot.counter("search_postings_cache_hits_total"), 2u);
}

// ------------------------------------------------ deadlines and admission

TEST_F(BatchServeFixture, ExpiredDeadlineRejectsBeforeExecution) {
  const auto index = InvertedIndex::open(index_dir_->path(), {}).value();
  const auto docs = DocMap::open(doc_map_path(index_dir_->path()));
  const auto searcher_ptr = Searcher::open(SearchSource::batch(index, docs)).value();
  const Searcher& searcher = *searcher_ptr;
  QueryRequest request;
  request.query = Query::term(batch_vocabulary(index).front());
  const auto result =
      searcher.search(request, std::chrono::steady_clock::now() - 1ms);
  ASSERT_FALSE(result.has_value());
  EXPECT_EQ(result.error().code, ErrorCode::kDeadlineExceeded);
}

TEST_F(BatchServeFixture, MidExecutionDeadlineDegradesAndSkipsCache) {
  const auto index = InvertedIndex::open(index_dir_->path(), {}).value();
  const auto docs = DocMap::open(doc_map_path(index_dir_->path()));
  const auto searcher_ptr = Searcher::open(SearchSource::batch(index, docs)).value();
  const Searcher& searcher = *searcher_ptr;
  const auto vocab = batch_vocabulary(index);
  QueryRequest request;
  std::vector<std::string> many_terms;
  for (std::size_t i = 0; i < 32 && i < vocab.size(); ++i) {
    many_terms.push_back(vocab[i]);
  }
  request.query = Query::bag(std::move(many_terms));
  request.exhaustive = true;  // degrades between terms
  // A razor-thin deadline lands in one of three places depending on
  // timing; every landing must be handled. Retry until we see the
  // mid-execution one (practically immediate).
  bool saw_degraded = false;
  for (int attempt = 0; attempt < 200 && !saw_degraded; ++attempt) {
    const auto result =
        searcher.search(request, std::chrono::steady_clock::now() + 20us);
    if (!result.has_value()) {
      EXPECT_EQ(result.error().code, ErrorCode::kDeadlineExceeded);
      continue;
    }
    saw_degraded = result.value().degraded();
  }
  if (!saw_degraded) GTEST_SKIP() << "machine too fast to catch mid-execution";
  // Degraded answers must never be replayed: the follow-up identical
  // query (no deadline) re-executes and completes.
  const auto followup = searcher.search(request);
  ASSERT_TRUE(followup.has_value());
  EXPECT_FALSE(followup.value().from_cache);
  EXPECT_FALSE(followup.value().degraded());
  EXPECT_GT(searcher.metrics().snapshot().counter("search_degraded_total"), 0u);
}

TEST(Admission, SaturatedQueueShedsAndQueuedDeadlineRejects) {
  TempDir corpus_dir("acorpus");
  TempDir live_dir("alive");
  const auto corpus = make_corpus(corpus_dir.path(), 32 << 10, 0xADA);
  IndexWriterOptions opts;
  opts.flush_threshold_bytes = 0;
  opts.background_compaction = false;
  auto w = IndexWriter::open(live_dir.path(), opts).value();
  for (const auto& doc : corpus.docs) w.add_document(doc.url, doc.body);
  w.flush();
  const auto snap = w.snapshot();
  std::string term;
  snap->for_each_term([&term](std::string_view t) {
    term = std::string(t);
    return false;
  });

  // The provider doubles as a brake: the first query blocks inside the
  // worker until the gate opens, pinning the single executor thread so
  // the queue saturates deterministically.
  std::binary_semaphore gate(0);
  auto searcher = Searcher::open(SearchSource::live([&gate, snap] {
                    gate.acquire();
                    gate.release();  // stay open for every later query
                    return snap;
                  })).value();
  SearchServiceOptions service_opts;
  service_opts.threads = 1;
  service_opts.queue_capacity = 1;
  SearchService service(std::move(searcher), service_opts);

  QueryRequest request;
  request.query = Query::term(term);
  auto blocked = service.submit(request);           // popped, blocks in provider
  while (service.queue_depth() != 0) std::this_thread::sleep_for(100us);

  QueryRequest queued = request;
  queued.timeout = 1ms;                             // expires while queued
  auto waiting = service.submit(queued);            // fills the queue

  auto shed = service.submit(request);              // queue full → shed now
  ASSERT_EQ(shed.wait_for(0s), std::future_status::ready);
  const auto shed_result = shed.get();
  ASSERT_FALSE(shed_result.has_value());
  EXPECT_EQ(shed_result.error().code, ErrorCode::kOverloaded);

  std::this_thread::sleep_for(5ms);                 // let the queued deadline lapse
  gate.release();                                   // open the brake

  const auto first = blocked.get();
  ASSERT_TRUE(first.has_value());
  EXPECT_FALSE(first.value().degraded());             // no timeout on the first

  const auto expired = waiting.get();
  ASSERT_FALSE(expired.has_value());
  EXPECT_EQ(expired.error().code, ErrorCode::kDeadlineExceeded);

  const auto snapshot = service.metrics().snapshot();
  EXPECT_EQ(snapshot.counter("search_requests_total"), 3u);
  EXPECT_EQ(snapshot.counter("search_shed_total"), 1u);
  EXPECT_EQ(snapshot.counter("search_deadline_rejected_total"), 1u);
}

TEST(Facade, DoclessSearcherServesBooleanButRejectsRanked) {
  TempDir corpus_dir("dcorpus");
  TempDir index_dir("dindex");
  const auto corpus = make_corpus(corpus_dir.path(), 32 << 10, 0xD0C);
  IndexBuilder builder;
  builder.parsers(1).cpu_indexers(1).emit_segment(true);
  builder.build(corpus.files, index_dir.path());
  const auto index = InvertedIndex::open(index_dir.path(), {}).value();
  const auto searcher_ptr = Searcher::open(SearchSource::batch(index)).value();
  const Searcher& searcher = *searcher_ptr;  // no DocMap

  QueryRequest request;
  request.query = Query::disjunction({batch_vocabulary(index).front()});
  const auto boolean = searcher.search(request);
  ASSERT_TRUE(boolean.has_value());
  EXPECT_FALSE(boolean.value().hits.empty());

  request.query = Query::bag({batch_vocabulary(index).front()});
  const auto ranked = searcher.search(request);
  ASSERT_FALSE(ranked.has_value());
  EXPECT_EQ(ranked.error().code, ErrorCode::kInvalidArgument);

  request.query = Query();
  const auto empty = searcher.search(request);
  ASSERT_FALSE(empty.has_value());
  EXPECT_EQ(empty.error().code, ErrorCode::kInvalidArgument);
}

// --------------------------------------------------- score-bound sidecar

TEST_F(BatchServeFixture, SidecarRoundTripsAndRejectsCorruption) {
  const auto seg_path = IndexLayout::segment_path(index_dir_->path());
  const auto reader = SegmentReader::open(seg_path);
  const auto expected = compute_max_tfs(reader);

  const auto loaded = read_max_tf_sidecar(seg_path, reader.term_count());
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded.value(), expected);  // build-time pass wrote the truth

  TempDir scratch("sidecar");
  const auto copy = scratch.path() + "/index.seg";
  std::filesystem::copy(seg_path, copy);
  write_max_tf_sidecar(copy, expected);

  {  // wrong term count → kCorrupt
    const auto r = read_max_tf_sidecar(copy, reader.term_count() + 1);
    ASSERT_FALSE(r.has_value());
    EXPECT_EQ(r.error().code, ErrorCode::kCorrupt);
  }
  {  // flipped payload byte → CRC mismatch
    std::fstream f(max_tf_sidecar_path(copy),
                   std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(16);
    char byte = 0;
    f.read(&byte, 1);
    f.seekp(16);
    byte = static_cast<char>(byte ^ 0x5A);
    f.write(&byte, 1);
    f.close();
    const auto r = read_max_tf_sidecar(copy, reader.term_count());
    ASSERT_FALSE(r.has_value());
    EXPECT_EQ(r.error().code, ErrorCode::kCorrupt);
  }
  std::filesystem::remove(max_tf_sidecar_path(copy));
  const auto r = read_max_tf_sidecar(copy, reader.term_count());
  ASSERT_FALSE(r.has_value());
  EXPECT_EQ(r.error().code, ErrorCode::kNotFound);
}

TEST_F(BatchServeFixture, BlockIndexSidecarRoundTripsAndRejectsCorruption) {
  const auto seg_path = IndexLayout::segment_path(index_dir_->path());
  const auto reader = SegmentReader::open(seg_path);

  // The build-time sidecar must equal a full recompute from the blobs.
  const auto loaded = read_block_index_sidecar(seg_path, reader.term_count());
  ASSERT_TRUE(loaded.has_value());
  const auto oracle = compute_block_index(reader);
  ASSERT_EQ(loaded.value().term_count(), oracle.term_count());
  ASSERT_EQ(loaded.value().total_blocks(), oracle.total_blocks());
  for (std::uint64_t ord = 0; ord < oracle.term_count(); ++ord) {
    const auto [got, got_n] = loaded.value().blocks(ord);
    const auto [want, want_n] = oracle.blocks(ord);
    ASSERT_EQ(got_n, want_n) << "term " << ord;
    for (std::size_t i = 0; i < want_n; ++i) {
      ASSERT_EQ(got[i], want[i]) << "term " << ord << " block " << i;
    }
  }
  EXPECT_TRUE(validate_block_index(reader, loaded.value()).has_value());

  TempDir scratch("bmx");
  const auto copy = scratch.path() + "/index.seg";
  std::filesystem::copy(seg_path, copy);
  ASSERT_TRUE(write_block_index_sidecar(copy, loaded.value()).has_value());

  {  // wrong term count → kCorrupt, not a silent degrade
    const auto r = read_block_index_sidecar(copy, reader.term_count() + 1);
    ASSERT_FALSE(r.has_value());
    EXPECT_EQ(r.error().code, ErrorCode::kCorrupt);
  }
  {  // flipped row byte → CRC mismatch
    const auto path = block_index_sidecar_path(copy);
    const auto size = std::filesystem::file_size(path);
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekg(static_cast<std::streamoff>(size - 8));  // inside the last row
    char byte = 0;
    f.read(&byte, 1);
    f.seekp(static_cast<std::streamoff>(size - 8));
    byte = static_cast<char>(byte ^ 0x5A);
    f.write(&byte, 1);
    f.close();
    const auto r = read_block_index_sidecar(copy, reader.term_count());
    ASSERT_FALSE(r.has_value());
    EXPECT_EQ(r.error().code, ErrorCode::kCorrupt);
  }
  {  // truncated below the fixed header → kCorrupt
    std::filesystem::resize_file(block_index_sidecar_path(copy), 20);
    const auto r = read_block_index_sidecar(copy, reader.term_count());
    ASSERT_FALSE(r.has_value());
    EXPECT_EQ(r.error().code, ErrorCode::kCorrupt);
  }
  std::filesystem::remove(block_index_sidecar_path(copy));
  const auto absent = read_block_index_sidecar(copy, reader.term_count());
  ASSERT_FALSE(absent.has_value());
  EXPECT_EQ(absent.error().code, ErrorCode::kNotFound);
}

TEST(Sidecar, BoundsSurviveMergesAndMatchTrueMaxima) {
  TempDir corpus_dir("mcorpus");
  TempDir live_dir("mlive");
  const auto corpus = make_corpus(corpus_dir.path(), 128 << 10, 0x3A6);
  IndexWriterOptions opts;
  opts.flush_threshold_bytes = 0;
  opts.background_compaction = false;
  auto w = IndexWriter::open(live_dir.path(), opts).value();
  std::mt19937 rng(13);
  for (const auto& doc : corpus.docs) {
    w.add_document(doc.url, doc.body);
    if (rng() % 9 == 0) w.flush();
  }
  w.flush();

  const auto check_bounds = [](const LiveSnapshot& snap) {
    std::size_t checked = 0;
    snap.for_each_term([&](std::string_view term) {
      const auto bound = snap.max_tf(term);
      EXPECT_TRUE(bound.has_value()) << term;
      const auto postings = snap.lookup(term);
      EXPECT_TRUE(postings.has_value()) << term;
      if (bound && postings) {
        const auto truth =
            *std::max_element(postings->tfs.begin(), postings->tfs.end());
        EXPECT_EQ(*bound, truth) << term;  // §III.F: max of per-input maxima
      }
      return ++checked < 300;  // spot-check; the corpus has thousands
    });
    EXPECT_GT(checked, 0u);
  };
  const auto multi = w.snapshot();
  ASSERT_GT(multi->segments().size(), 1u);
  check_bounds(*multi);

  w.compact_now();
  const auto merged = w.snapshot();
  ASSERT_LT(merged->segments().size(), multi->segments().size());
  check_bounds(*merged);
}

// -------------------------------- searches racing flushes and compaction

TEST(Concurrency, SearchesRaceLiveFlushAndCompaction) {
  TempDir corpus_dir("rcorpus");
  TempDir live_dir("rlive");
  const auto corpus = make_corpus(corpus_dir.path(), 256 << 10, 0x7ACE);
  IndexWriterOptions opts;
  opts.flush_threshold_bytes = 0;
  opts.background_compaction = true;  // merges race the searches too
  opts.merge_factor = 2;
  opts.tier_base_bytes = 8 << 10;
  auto w = IndexWriter::open(live_dir.path(), opts).value();

  // Seed enough documents that early queries have something to rank.
  const std::size_t seed_docs = corpus.docs.size() / 4;
  for (std::size_t i = 0; i < seed_docs; ++i) {
    w.add_document(corpus.docs[i].url, corpus.docs[i].body);
  }
  w.flush();
  std::vector<std::string> vocab;
  w.snapshot()->for_each_term([&vocab](std::string_view term) {
    vocab.emplace_back(term);
    return vocab.size() < 64;
  });
  ASSERT_FALSE(vocab.empty());

  auto searcher =
      Searcher::open(SearchSource::live([&w] { return w.snapshot(); })).value();
  SearchServiceOptions service_opts;
  service_opts.threads = 3;
  service_opts.queue_capacity = 32;
  SearchService service(searcher, service_opts);

  std::atomic<bool> done{false};
  std::atomic<std::uint64_t> answered{0};
  std::vector<std::jthread> clients;
  for (int c = 0; c < 3; ++c) {
    clients.emplace_back([&, c] {
      std::mt19937 rng(100 + c);
      while (!done.load(std::memory_order_relaxed)) {
        QueryRequest request;
        std::vector<std::string> pair = {vocab[rng() % vocab.size()],
                                         vocab[rng() % vocab.size()]};
        switch (rng() % 3) {
          case 0: request.query = Query::bag(std::move(pair)); break;
          case 1: request.query = Query::conjunction(std::move(pair)); break;
          default: request.query = Query::disjunction(std::move(pair)); break;
        }
        request.k = 5;
        // Alternate direct facade calls and pooled submissions so both
        // paths race the writer.
        const auto result = (rng() & 1) ? searcher->search(request)
                                        : service.search(request);
        if (result.has_value()) {
          answered.fetch_add(1, std::memory_order_relaxed);
        } else {
          EXPECT_EQ(result.error().code, ErrorCode::kOverloaded);
        }
      }
    });
  }

  std::mt19937 rng(0xF1);
  for (std::size_t i = seed_docs; i < corpus.docs.size(); ++i) {
    w.add_document(corpus.docs[i].url, corpus.docs[i].body);
    if (rng() % 13 == 0) w.flush();
  }
  w.flush();
  w.compact_now();
  done.store(true, std::memory_order_relaxed);
  clients.clear();  // join

  EXPECT_GT(answered.load(), 0u);
  const auto final_snap = w.snapshot();
  EXPECT_EQ(final_snap->doc_count(), corpus.docs.size());
  // Post-race sanity: ranked answers still match the exhaustive engine.
  std::vector<std::vector<std::string>> queries;
  for (std::size_t i = 0; i + 1 < vocab.size() && queries.size() < 5; i += 2) {
    queries.push_back({vocab[i], vocab[i + 1]});
  }
  const auto fresh = Searcher::open(SearchSource::snapshot(final_snap)).value();
  expect_identical_rankings(*fresh, queries, 10);
}

}  // namespace
}  // namespace hetindex
