// Query AST and operator tests (docs/QUERIES.md): grammar and precedence,
// canonical-form round trips through parse_query/to_string, randomized
// phrase/NEAR equivalence against a naive positional-join oracle over
// batch and live indexes (memtable-resident docs, deletes, and
// post-compaction state), Bloom-filter on/off bit-identity with the
// search_blooms_rejected_total counter, and the deprecated terms/mode
// request shim. The TSan and ASan tier-1 legs both run this file.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <map>
#include <random>
#include <string>
#include <vector>

#include "core/hetindex.hpp"
#include "search/searcher.hpp"

namespace hetindex {
namespace {

class TempDir {
 public:
  explicit TempDir(const std::string& tag) {
    path_ = (std::filesystem::temp_directory_path() /
             ("hetindex_qast_" + tag + "_" + std::to_string(counter_++)))
                .string();
    std::filesystem::create_directories(path_);
  }
  ~TempDir() { std::filesystem::remove_all(path_); }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  static inline int counter_ = 0;
  std::string path_;
};

struct Corpus {
  std::vector<std::string> files;
  std::vector<Document> docs;
};

Corpus make_corpus(const std::string& dir, std::uint64_t bytes, std::uint64_t seed) {
  CollectionSpec spec = wikipedia_like();
  spec.total_bytes = bytes;
  spec.seed = seed;
  const auto coll = generate_collection(spec, dir);
  Corpus corpus;
  corpus.files = coll.paths();
  for (const auto& file : corpus.files) {
    for (auto& doc : container_read(file)) corpus.docs.push_back(std::move(doc));
  }
  return corpus;
}

// ------------------------------------------------------------ grammar

TEST(QueryParse, AdjacencyIsARankedBag) {
  const auto q = parse_query("alpha beta").value();
  EXPECT_EQ(q.query_class(), QueryClass::kRanked);
  EXPECT_EQ(q.collect_terms(),
            (std::vector<std::string>{normalize_term("alpha"), normalize_term("beta")}));
}

TEST(QueryParse, OperatorsAndPrecedence) {
  // OR binds loosest, then AND, then NEAR, then adjacency.
  const auto q = parse_query("alpha beta OR gamma AND delta").value();
  EXPECT_EQ(q.query_class(), QueryClass::kDisjunctive);
  ASSERT_EQ(q.root().op, QueryOp::kOr);
  ASSERT_EQ(q.root().children.size(), 2u);
  EXPECT_EQ(q.root().children[0].op, QueryOp::kBag);
  EXPECT_EQ(q.root().children[1].op, QueryOp::kAnd);

  const auto parens = parse_query("(alpha OR beta) AND gamma").value();
  EXPECT_EQ(parens.query_class(), QueryClass::kConjunctive);
  ASSERT_EQ(parens.root().op, QueryOp::kAnd);
  EXPECT_EQ(parens.root().children[0].op, QueryOp::kOr);
}

TEST(QueryParse, PhraseAndNearForms) {
  const auto phrase = parse_query("\"alpha beta gamma\"").value();
  EXPECT_EQ(phrase.query_class(), QueryClass::kPhrase);
  ASSERT_EQ(phrase.root().op, QueryOp::kPhrase);
  EXPECT_EQ(phrase.root().terms.size(), 3u);

  const auto near = parse_query("alpha NEAR/4 beta").value();
  EXPECT_EQ(near.query_class(), QueryClass::kProximity);
  ASSERT_EQ(near.root().op, QueryOp::kNear);
  EXPECT_EQ(near.root().window, 4u);

  // A phrase inside an AND keeps the whole query in the phrase class.
  const auto mixed = parse_query("alpha AND \"beta gamma\"").value();
  EXPECT_EQ(mixed.query_class(), QueryClass::kPhrase);
}

TEST(QueryParse, TermsAreNormalizedAtParse) {
  const auto q = parse_query("Running COMPUTERS").value();
  EXPECT_EQ(q.collect_terms(),
            (std::vector<std::string>{normalize_term("Running"),
                                      normalize_term("COMPUTERS")}));
}

TEST(QueryParse, MalformedQueriesAreInvalidArgument) {
  for (const char* bad : {"", "   ", "(alpha", "alpha)", "\"alpha",
                          "alpha NEAR/0 beta", "alpha AND", "OR beta",
                          "\"\"", "alpha NEAR/2 (beta OR gamma)"}) {
    const auto r = parse_query(bad);
    ASSERT_FALSE(r.has_value()) << "accepted: '" << bad << "'";
    EXPECT_EQ(r.error().code, ErrorCode::kInvalidArgument) << bad;
  }
}

TEST(QueryFactories, EmptyInputsYieldTheEmptyQuery) {
  EXPECT_TRUE(Query().empty());
  EXPECT_TRUE(Query::bag({}).empty());
  EXPECT_TRUE(Query::conjunction({}).empty());
  EXPECT_TRUE(Query::disjunction({}).empty());
  EXPECT_TRUE(Query::and_of({}).empty());
  EXPECT_TRUE(Query::or_of({}).empty());
}

TEST(QueryFactories, SingleTermBooleanKeepsItsClass) {
  // QueryMode::kConjunctive / kDisjunctive historically ranked by summed
  // tf without a DocMap, so a one-term legacy request must not collapse
  // into the BM25-ranked class through the shim.
  EXPECT_EQ(Query::conjunction({"alpha"}).query_class(), QueryClass::kConjunctive);
  EXPECT_EQ(Query::disjunction({"alpha"}).query_class(), QueryClass::kDisjunctive);
  EXPECT_EQ(Query::bag({"alpha"}).query_class(), QueryClass::kRanked);
}

// ------------------------------------------------- canonical round trip

/// Random AST over a normalized vocabulary. Group factories flatten and
/// canonicalize at construction, so to_string() is already the canonical
/// form the parser reproduces. Single-child groups are never generated —
/// their printed form is the bare child, which legitimately reparses as a
/// different (equivalent-scoring) shape.
Query random_query(std::mt19937& rng, const std::vector<std::string>& vocab,
                   int depth) {
  const auto pick_terms = [&](std::size_t n) {
    std::vector<std::string> terms;
    for (std::size_t i = 0; i < n; ++i) terms.push_back(vocab[rng() % vocab.size()]);
    return terms;
  };
  const std::uint32_t choice = rng() % (depth > 0 ? 6 : 4);
  switch (choice) {
    case 0: return Query::term(vocab[rng() % vocab.size()]);
    case 1: return Query::bag(pick_terms(2 + rng() % 2));
    case 2: return Query::phrase(pick_terms(2 + rng() % 2));
    case 3: return Query::near(pick_terms(2 + rng() % 2), 1 + rng() % 5);
    default: {
      std::vector<Query> children;
      const std::size_t n = 2 + rng() % 2;
      for (std::size_t i = 0; i < n; ++i) {
        children.push_back(random_query(rng, vocab, depth - 1));
      }
      return choice == 4 ? Query::and_of(std::move(children))
                         : Query::or_of(std::move(children));
    }
  }
}

TEST(QueryRoundTrip, ParseOfToStringReproducesTheAst) {
  std::vector<std::string> vocab;
  for (const char* w : {"alpha", "beta", "gamma", "delta", "epsilon", "zeta"}) {
    vocab.push_back(normalize_term(w));
  }
  std::mt19937 rng(1234);
  for (int trial = 0; trial < 300; ++trial) {
    const Query q = random_query(rng, vocab, 2);
    const std::string text = q.to_string();
    const auto reparsed = parse_query(text);
    ASSERT_TRUE(reparsed.has_value()) << "trial " << trial << ": '" << text << "'";
    EXPECT_EQ(reparsed.value().to_string(), text) << "trial " << trial;
    EXPECT_EQ(reparsed.value().query_class(), q.query_class()) << text;
    EXPECT_EQ(reparsed.value().collect_terms(), q.collect_terms()) << text;
  }
}

// -------------------------------------------- naive positional oracle

/// Per-doc position vectors of one decoded list: posting i owns the next
/// tfs[i] entries of the flat positions vector.
std::map<std::uint32_t, std::vector<std::uint32_t>> positions_by_doc(
    const QueryPostings& p) {
  std::map<std::uint32_t, std::vector<std::uint32_t>> out;
  std::size_t cursor = 0;
  for (std::size_t i = 0; i < p.doc_ids.size(); ++i) {
    auto& dst = out[p.doc_ids[i]];
    for (std::uint32_t t = 0; t < p.tfs[i]; ++t) dst.push_back(p.positions[cursor++]);
  }
  return out;
}

/// The reference implementation: an O(docs × positions²) scan that shares
/// no code with phrase_match_count/near_match_count or the cursor engine.
/// `lists` in term order; a missing term empties the result. tf = phrase
/// start count, or NEAR anchor count over the FIRST term's occurrences.
std::vector<ScoredDoc> naive_positional(
    const std::vector<std::optional<QueryPostings>>& lists, bool phrase,
    std::uint32_t window, std::size_t k, const TombstoneSet* dead) {
  std::vector<ScoredDoc> hits;
  for (const auto& list : lists) {
    if (!list.has_value()) return hits;
  }
  std::vector<std::map<std::uint32_t, std::vector<std::uint32_t>>> by_doc;
  by_doc.reserve(lists.size());
  for (const auto& list : lists) by_doc.push_back(positions_by_doc(*list));
  for (const auto& [doc, anchors] : by_doc[0]) {
    if (dead != nullptr && dead->contains(doc)) continue;
    bool everywhere = true;
    for (std::size_t t = 1; t < by_doc.size() && everywhere; ++t) {
      everywhere = by_doc[t].count(doc) != 0;
    }
    if (!everywhere) continue;
    std::uint32_t tf = 0;
    for (const std::uint32_t p : anchors) {
      bool match = true;
      for (std::size_t t = 1; t < by_doc.size() && match; ++t) {
        const auto& pos = by_doc[t].at(doc);
        if (phrase) {
          match = std::find(pos.begin(), pos.end(),
                            p + static_cast<std::uint32_t>(t)) != pos.end();
        } else {
          match = false;
          for (const std::uint32_t q : pos) {
            const std::uint32_t dist = q > p ? q - p : p - q;
            if (dist <= window) {
              match = true;
              break;
            }
          }
        }
      }
      if (match) ++tf;
    }
    if (tf > 0) hits.push_back({doc, static_cast<double>(tf)});
  }
  std::sort(hits.begin(), hits.end(), [](const ScoredDoc& a, const ScoredDoc& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.doc_id < b.doc_id;
  });
  if (hits.size() > k) hits.resize(k);
  return hits;
}

void expect_hits_equal(const std::vector<ScoredDoc>& got,
                       const std::vector<ScoredDoc>& want, const std::string& label) {
  ASSERT_EQ(got.size(), want.size()) << label;
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].doc_id, want[i].doc_id) << label << " rank " << i;
    EXPECT_EQ(got[i].score, want[i].score) << label << " rank " << i;
  }
}

/// Mixed phrase/NEAR workload: half the operand groups come from adjacent
/// tokens of real documents (likely to match), half from random vocabulary
/// draws (mostly Bloom-rejected misses).
std::vector<Query> positional_workload(std::mt19937& rng,
                                       const std::vector<Document>& docs,
                                       const std::vector<std::string>& vocab,
                                       std::size_t count) {
  const auto adjacent_pair = [&]() -> std::vector<std::string> {
    for (int attempt = 0; attempt < 64; ++attempt) {
      const auto& body = docs[rng() % docs.size()].body;
      std::vector<std::string> tokens;
      std::string token;
      for (const char c : body) {
        if (c == ' ' || c == '\n' || c == '\t') {
          if (!token.empty()) tokens.push_back(std::move(token));
          token.clear();
        } else {
          token += c;
        }
      }
      if (!token.empty()) tokens.push_back(std::move(token));
      if (tokens.size() < 2) continue;
      const std::size_t at = rng() % (tokens.size() - 1);
      const auto a = normalize_term(tokens[at]);
      const auto b = normalize_term(tokens[at + 1]);
      if (!a.empty() && !b.empty()) return {a, b};
    }
    return {vocab[rng() % vocab.size()], vocab[rng() % vocab.size()]};
  };
  std::vector<Query> queries;
  for (std::size_t i = 0; i < count; ++i) {
    std::vector<std::string> terms =
        i % 2 == 0 ? adjacent_pair()
                   : std::vector<std::string>{vocab[rng() % vocab.size()],
                                              vocab[rng() % vocab.size()]};
    if (i % 5 == 4) terms.push_back(vocab[rng() % vocab.size()]);
    queries.push_back(i % 3 == 2 ? Query::near(std::move(terms), 1 + i % 4)
                                 : Query::phrase(std::move(terms)));
  }
  return queries;
}

/// Runs every query through `searcher` and diffs against the oracle fed by
/// `fetch` (raw positional lists) + `dead` (tombstones). `total_hits`
/// accumulates matches so callers can assert the workload was not all
/// misses.
template <typename Fetch>
void expect_matches_naive(const SearchBackend& searcher,
                          const std::vector<Query>& queries, Fetch&& fetch,
                          const TombstoneSet* dead, const std::string& label,
                          std::size_t& total_hits) {
  for (const Query& q : queries) {
    QueryRequest request;
    request.query = q;
    request.k = 1000;  // deep k: compare the full result set
    request.use_result_cache = false;
    const auto r = searcher.search(request);
    ASSERT_TRUE(r.has_value()) << label << ": " << r.error().to_string();
    const auto& node = q.root();
    std::vector<std::optional<QueryPostings>> lists;
    for (const auto& term : node.terms) lists.push_back(fetch(term));
    const auto want = naive_positional(lists, node.op == QueryOp::kPhrase,
                                       node.window, request.k, dead);
    expect_hits_equal(r.value().hits, want, label + " '" + q.to_string() + "'");
    if (::testing::Test::HasFatalFailure()) return;
    total_hits += r.value().hits.size();
  }
}

// ------------------------------------------------- batch index equivalence

class BatchPositionalFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    corpus_dir_ = new TempDir("bcorpus");
    index_dir_ = new TempDir("bindex");
    corpus_ = new Corpus(make_corpus(corpus_dir_->path(), 128 << 10, 0xA57));
    IndexBuilder builder;
    builder.parsers(1).cpu_indexers(1).emit_segment(true);
    builder.config().parser.record_positions = true;
    builder.build(corpus_->files, index_dir_->path());
  }
  static void TearDownTestSuite() {
    delete corpus_;
    delete index_dir_;
    delete corpus_dir_;
    corpus_ = nullptr;
    index_dir_ = nullptr;
    corpus_dir_ = nullptr;
  }
  static inline TempDir* corpus_dir_ = nullptr;
  static inline TempDir* index_dir_ = nullptr;
  static inline Corpus* corpus_ = nullptr;
};

TEST_F(BatchPositionalFixture, PhraseAndNearMatchNaiveJoin) {
  const auto index = InvertedIndex::open(index_dir_->path(), {}).value();
  std::vector<std::string> vocab;
  index.for_each_term([&vocab](std::string_view t) { vocab.emplace_back(t); });
  ASSERT_FALSE(vocab.empty());
  const auto searcher = Searcher::open(SearchSource::batch(index)).value();

  std::mt19937 rng(0xF00);
  const auto queries = positional_workload(rng, corpus_->docs, vocab, 60);
  std::size_t hits = 0;
  expect_matches_naive(
      *searcher, queries,
      [&index](const std::string& term) { return index.lookup_positional(term); },
      /*dead=*/nullptr, "batch", hits);
  // Half the workload is built from adjacent document tokens -- a zero
  // here means the positional path found nothing at all.
  EXPECT_GT(hits, 0u);
}

TEST_F(BatchPositionalFixture, NonPositionalIndexRejectsPhrase) {
  TempDir plain_dir("plain");
  IndexBuilder builder;
  builder.parsers(1).cpu_indexers(1).emit_segment(true);  // no positions
  builder.build(corpus_->files, plain_dir.path());
  const auto index = InvertedIndex::open(plain_dir.path(), {}).value();
  const auto searcher = Searcher::open(SearchSource::batch(index)).value();

  // Pick a term pair that co-occurs in some document so the intersection
  // survives to the positional verify. Stop words are stripped at indexing
  // but not by normalize_term, so only keep tokens the index knows about —
  // an absent term short-circuits the conjunction before the verify runs.
  std::vector<std::string> tokens;
  std::string token;
  for (const char c : corpus_->docs.front().body) {
    if (c == ' ' || c == '\n') {
      if (!token.empty()) tokens.push_back(std::move(token));
      token.clear();
    } else {
      token += c;
    }
  }
  if (!token.empty()) tokens.push_back(std::move(token));
  ASSERT_GE(tokens.size(), 2u);
  std::vector<std::string> pair;
  for (const auto& t : tokens) {
    const auto n = normalize_term(t);
    if (!n.empty() && (pair.empty() || n != pair.front()) &&
        index.lookup(n).has_value()) {
      pair.push_back(n);
    }
    if (pair.size() == 2) break;
  }
  ASSERT_EQ(pair.size(), 2u);

  QueryRequest request;
  request.query = Query::phrase(pair);
  const auto r = searcher->search(request);
  ASSERT_FALSE(r.has_value());
  EXPECT_EQ(r.error().code, ErrorCode::kInvalidArgument);
}

// ------------------------------------------------- live tier equivalence

TEST(LivePositional, PhraseAndNearMatchNaiveJoinAcrossMutations) {
  TempDir corpus_dir("lcorpus");
  TempDir live_dir("llive");
  const auto corpus = make_corpus(corpus_dir.path(), 96 << 10, 0x11FE);

  IndexWriterOptions opts;
  opts.flush_threshold_bytes = 0;
  opts.background_compaction = false;
  opts.parser.record_positions = true;
  auto w = IndexWriter::open(live_dir.path(), opts).value();

  // Ingest with random flush points and interleaved deletes; leave a tail
  // of memtable-resident documents so the unflushed path is exercised.
  std::mt19937 rng(0x11FE);
  std::vector<std::uint32_t> live_ids;
  for (std::size_t i = 0; i < corpus.docs.size(); ++i) {
    live_ids.push_back(w.add_document(corpus.docs[i].url, corpus.docs[i].body));
    const auto roll = rng() % 17;
    if (roll == 0 && i + 8 < corpus.docs.size()) {
      ASSERT_TRUE(w.flush().has_value());
    } else if (roll == 1 && !live_ids.empty()) {
      const std::size_t victim = rng() % live_ids.size();
      ASSERT_TRUE(w.delete_document(live_ids[victim]).has_value());
      live_ids.erase(live_ids.begin() + static_cast<std::ptrdiff_t>(victim));
    }
  }

  const auto searcher =
      Searcher::open(SearchSource::live([&w] { return w.snapshot(); })).value();
  std::vector<std::string> vocab;
  w.snapshot()->for_each_term([&vocab](std::string_view t) {
    vocab.emplace_back(t);
    return true;
  });
  ASSERT_FALSE(vocab.empty());

  const auto run = [&](const std::string& label) {
    const auto snap = w.snapshot();
    std::mt19937 qrng(0xBEA7);
    const auto queries = positional_workload(qrng, corpus.docs, vocab, 60);
    std::size_t hits = 0;
    expect_matches_naive(
        *searcher, queries,
        [&snap](const std::string& term) { return snap->lookup(term); },
        snap->tombstones(), label, hits);
    EXPECT_GT(hits, 0u) << label;
  };

  run("live+memtable");  // segments + unflushed tail + tombstones

  ASSERT_TRUE(w.flush().has_value());
  ASSERT_TRUE(w.compact_now().has_value());
  run("post-compaction");  // reclaim rewrote segments and .blm sidecars
}

// ------------------------------------------------- bloom on/off identity

TEST(BloomIdentity, ConjunctionsBitIdenticalWithFiltersOff) {
  TempDir corpus_dir("blcorpus");
  TempDir live_dir("bllive");
  const auto corpus = make_corpus(corpus_dir.path(), 96 << 10, 0xB100);

  IndexWriterOptions opts;
  opts.flush_threshold_bytes = 0;
  opts.background_compaction = false;
  opts.parser.record_positions = true;
  auto w = IndexWriter::open(live_dir.path(), opts).value();
  for (std::size_t i = 0; i < corpus.docs.size(); ++i) {
    w.add_document(corpus.docs[i].url, corpus.docs[i].body);
    if (i % 40 == 39) {  // several segments, so chains hold several links
      ASSERT_TRUE(w.flush().has_value());
    }
  }
  ASSERT_TRUE(w.flush().has_value());

  SearcherOptions with_blooms;
  with_blooms.use_bloom_filters = true;
  SearcherOptions without_blooms;
  without_blooms.use_bloom_filters = false;
  const auto filtered =
      Searcher::open(SearchSource::live([&w] { return w.snapshot(); }), with_blooms)
          .value();
  const auto unfiltered =
      Searcher::open(SearchSource::live([&w] { return w.snapshot(); }),
                     without_blooms)
          .value();

  std::vector<std::string> vocab;
  w.snapshot()->for_each_term([&vocab](std::string_view t) {
    vocab.emplace_back(t);
    return true;
  });
  ASSERT_GT(vocab.size(), 4u);

  std::mt19937 rng(0xB10F);
  for (int i = 0; i < 80; ++i) {
    std::vector<std::string> terms;
    for (std::size_t t = 0; t < 2 + rng() % 2; ++t) {
      terms.push_back(vocab[rng() % vocab.size()]);
    }
    QueryRequest request;
    request.query = i % 4 == 3 ? Query::phrase(terms) : Query::conjunction(terms);
    request.k = 50;
    request.use_result_cache = false;
    const auto a = filtered->search(request);
    const auto b = unfiltered->search(request);
    ASSERT_TRUE(a.has_value()) << a.error().to_string();
    ASSERT_TRUE(b.has_value()) << b.error().to_string();
    expect_hits_equal(a.value().hits, b.value().hits,
                      "bloom '" + request.query.to_string() + "'");
  }
  // Filters must only move the rejection counter, never the answers above.
  EXPECT_GT(filtered->metrics().snapshot().counter("search_blooms_rejected_total"), 0u);
  EXPECT_EQ(unfiltered->metrics().snapshot().counter("search_blooms_rejected_total"),
            0u);
}

// ------------------------------------------------- deprecated shim parity

TEST(LegacyShim, DeprecatedTermsAndModeMatchTheAstForms) {
  TempDir corpus_dir("shcorpus");
  TempDir index_dir("shindex");
  const auto corpus = make_corpus(corpus_dir.path(), 64 << 10, 0x5A1);
  IndexBuilder builder;
  builder.parsers(1).cpu_indexers(1).emit_segment(true);
  builder.build(corpus.files, index_dir.path());
  const auto index = InvertedIndex::open(index_dir.path(), {}).value();
  const auto docs = DocMap::open(doc_map_path(index_dir.path()));
  const auto searcher = Searcher::open(SearchSource::batch(index, docs)).value();

  std::vector<std::string> vocab;
  index.for_each_term([&vocab](std::string_view t) { vocab.emplace_back(t); });
  ASSERT_GT(vocab.size(), 2u);
  const std::vector<std::string> terms = {vocab[0], vocab[vocab.size() / 2]};

  struct ModeShim {
    QueryMode mode;
    Query (*make)(std::vector<std::string>);
  };
  const ModeShim shims[] = {{QueryMode::kRanked, &Query::bag},
                            {QueryMode::kConjunctive, &Query::conjunction},
                            {QueryMode::kDisjunctive, &Query::disjunction}};
  for (const auto& shim : shims) {
    QueryRequest legacy;
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
    legacy.terms = terms;
    legacy.mode = shim.mode;
#pragma GCC diagnostic pop
    legacy.use_result_cache = false;
    QueryRequest modern;
    modern.query = shim.make(terms);
    modern.use_result_cache = false;
    const auto a = searcher->search(legacy);
    const auto b = searcher->search(modern);
    ASSERT_TRUE(a.has_value()) << a.error().to_string();
    ASSERT_TRUE(b.has_value()) << b.error().to_string();
    EXPECT_EQ(a.value().query_class(), b.value().query_class());
    expect_hits_equal(a.value().hits, b.value().hits,
                      std::string("shim ") + query_mode_name(shim.mode));
  }
}

}  // namespace
}  // namespace hetindex
