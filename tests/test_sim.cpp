// Tests for the DES pipeline simulator: stage serialization, back-pressure
// and the qualitative behaviours behind Fig. 10 and Table IV.

#include <gtest/gtest.h>

#include "sim/pipeline_sim.hpp"

namespace hetindex {
namespace {

/// Builds synthetic run records with uniform per-stage costs.
std::vector<RunRecord> make_runs(std::size_t count, double parse_s, double cpu_index_s,
                                 double gpu_index_s, std::size_t n_cpu, std::size_t n_gpu,
                                 std::uint64_t compressed_mb = 4,
                                 std::uint64_t source_mb = 16) {
  std::vector<RunRecord> runs(count);
  for (std::size_t r = 0; r < count; ++r) {
    auto& run = runs[r];
    run.run_id = r;
    run.compressed_bytes = compressed_mb << 20;
    run.source_bytes = source_mb << 20;
    run.decompress_seconds = parse_s * 0.25;
    run.parse_seconds = parse_s;
    run.cpu_index_seconds.assign(n_cpu, cpu_index_s);
    run.gpu_timings.resize(n_gpu);
    for (auto& g : run.gpu_timings) {
      g.pre_seconds = 0.01;
      g.index_seconds = gpu_index_s;
      g.post_seconds = 0.01;
    }
    run.flush_seconds = 0.02;
  }
  return runs;
}

TEST(PipelineSim, EmptyInput) {
  PipelineSimulator sim;
  const auto result = sim.simulate({}, {});
  EXPECT_EQ(result.total_seconds, 0.0);
}

TEST(PipelineSim, ParserScalingIsLinearUntilDiskBound) {
  // Parse-dominated records: more parsers → proportionally faster, until
  // the serialized disk becomes the bottleneck (Fig. 10's "almost linear
  // scalability ... major limitation ... sequential access to our single
  // disk").
  PipelineSimulator sim;
  const auto runs = make_runs(64, /*parse_s=*/2.0, 0.1, 0.1, 8, 0);
  SimPipelineConfig cfg;
  cfg.indexing_enabled = false;
  std::vector<double> totals;
  for (std::size_t m = 1; m <= 7; ++m) {
    cfg.parsers = m;
    totals.push_back(sim.simulate(runs, cfg).total_seconds);
  }
  EXPECT_NEAR(totals[0] / totals[1], 2.0, 0.2);  // 1→2 parsers ≈ 2×
  EXPECT_NEAR(totals[0] / totals[3], 4.0, 0.5);  // 1→4 parsers ≈ 4×
  // Monotone improvement throughout.
  for (std::size_t i = 1; i < totals.size(); ++i) EXPECT_LE(totals[i], totals[i - 1] * 1.01);
}

TEST(PipelineSim, DiskSerializationCapsParserScaling) {
  // Read-dominated records: beyond ~read/parse ratio parsers add nothing.
  PipelineSimulator sim;  // 100 MB/s disk
  // 100 MB compressed per run → 1 s read; 0.5 s parse work.
  const auto runs = make_runs(32, /*parse_s=*/0.4, 0.1, 0.1, 8, 0, /*compressed_mb=*/100);
  SimPipelineConfig cfg;
  cfg.indexing_enabled = false;
  cfg.parsers = 1;
  const double t1 = sim.simulate(runs, cfg).total_seconds;
  cfg.parsers = 4;
  const double t4 = sim.simulate(runs, cfg).total_seconds;
  cfg.parsers = 7;
  const double t7 = sim.simulate(runs, cfg).total_seconds;
  EXPECT_LT(t4, t1);
  // Disk-bound floor: 32 reads × 1 s ≈ 32 s no matter the parser count.
  EXPECT_NEAR(t7, 32.0, 3.0);
  EXPECT_NEAR(t4, t7, 2.0);
}

TEST(PipelineSim, IndexersWaitWhenParsersAreSlow) {
  PipelineSimulator sim;
  const auto runs = make_runs(16, /*parse_s=*/1.0, /*cpu=*/0.05, 0.0, 2, 0);
  SimPipelineConfig cfg;
  cfg.parsers = 1;
  cfg.cpu_indexers = 2;
  cfg.gpus = 0;
  const auto result = sim.simulate(runs, cfg);
  EXPECT_GT(result.indexer_wait_seconds, result.indexing_seconds);
  EXPECT_NEAR(result.total_seconds, result.parse_stage_seconds,
              result.total_seconds * 0.2);
}

TEST(PipelineSim, BackPressureStallsParsersWhenIndexingIsSlow) {
  PipelineSimulator sim;
  const auto runs = make_runs(16, /*parse_s=*/0.05, /*cpu=*/1.0, 0.0, 1, 0);
  SimPipelineConfig cfg;
  cfg.parsers = 4;
  cfg.cpu_indexers = 1;
  cfg.gpus = 0;
  cfg.buffers_per_parser = 1;
  const auto result = sim.simulate(runs, cfg);
  // Total is pinned to the indexing stage: ~16 × 1 s.
  EXPECT_NEAR(result.total_seconds, 16.0, 2.0);
  // The parse stage cannot finish arbitrarily early because the window
  // blocks it behind consumption.
  EXPECT_GT(result.parse_stage_seconds, 10.0);
}

TEST(PipelineSim, GpuOffloadShortensRunIndexing) {
  PipelineSimulator sim;
  // CPU indexers take 1.0 s without GPUs; with GPUs the same records show
  // CPU 0.6 s (popular only) and GPU 0.5 s — runs finish in max(0.6, 0.5).
  const auto without_gpu = make_runs(16, 0.05, 1.0, 0.0, 2, 0);
  const auto with_gpu = make_runs(16, 0.05, 0.6, 0.5, 2, 2);
  SimPipelineConfig cfg;
  cfg.parsers = 6;
  cfg.cpu_indexers = 2;
  cfg.gpus = 0;
  const double t_cpu = sim.simulate(without_gpu, cfg).total_seconds;
  cfg.gpus = 2;
  const double t_het = sim.simulate(with_gpu, cfg).total_seconds;
  EXPECT_LT(t_het, t_cpu * 0.75);
}

TEST(PipelineSim, TableIvAccountingSumsPerRun) {
  PipelineSimulator sim;
  const auto runs = make_runs(10, 0.05, 0.3, 0.2, 2, 2);
  SimPipelineConfig cfg;
  cfg.parsers = 6;
  cfg.cpu_indexers = 2;
  cfg.gpus = 2;
  const auto result = sim.simulate(runs, cfg);
  EXPECT_NEAR(result.pre_seconds, 10 * 0.01, 1e-6);
  EXPECT_NEAR(result.indexing_seconds, 10 * 0.3, 1e-6);  // max(cpu 0.3, gpu 0.2)
  EXPECT_NEAR(result.post_seconds, 10 * (0.01 + 0.02), 1e-6);
  EXPECT_EQ(result.per_run_index_seconds.size(), 10u);
  // Indexer stage ≥ sum of the three phases (waiting adds the rest).
  EXPECT_GE(result.index_stage_seconds + 1e-9,
            result.pre_seconds + result.indexing_seconds + result.post_seconds);
  EXPECT_GT(result.throughput_mb_s(), 0.0);
  EXPECT_GE(result.indexing_throughput_mb_s(), result.indexer_throughput_mb_s());
}

TEST(PipelineSim, CoreSpeedRatioRescalesCpuWork) {
  PlatformModel slow;
  slow.core_speed_ratio = 2.0;  // platform cores half as fast
  PipelineSimulator fast_sim, slow_sim(slow);
  const auto runs = make_runs(8, 0.5, 0.5, 0.0, 1, 0);
  SimPipelineConfig cfg;
  cfg.parsers = 2;
  cfg.cpu_indexers = 1;
  cfg.gpus = 0;
  EXPECT_GT(slow_sim.simulate(runs, cfg).total_seconds,
            fast_sim.simulate(runs, cfg).total_seconds * 1.5);
}

}  // namespace
}  // namespace hetindex
