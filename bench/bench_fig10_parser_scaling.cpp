/// \file bench_fig10_parser_scaling.cpp
/// Reproduces Fig. 10: "Optimal Number of Parallel Parsers and Indexers".
/// Throughput on the ClueWeb-like collection as a function of the number
/// of parsers M under three scenarios:
///   (1) M parsers + (8−M) CPU indexers, no GPUs;
///   (2) M parsers + (8−M) CPU indexers + 2 GPU indexers;
///   (3) M parsers only (parse stage in isolation).
///
/// Method: for each CPU-indexer count the real pipeline is built once to
/// measure honest per-run stage costs under that popularity split; the
/// discrete-event simulator then schedules those costs on the paper's
/// 8-core + 2×C1060 platform for each M. Expected shape (paper): near-
/// linear scaling to M≈5; without GPUs, 8−M indexers fall behind beyond
/// M=5 (best ratio 5:3); with GPUs, 6 parsers + 2 CPU + 2 GPU match rates.

#include <algorithm>
#include <array>
#include <cstdio>
#include <filesystem>

#include "bench_common.hpp"

using namespace hetindex;
using namespace hetindex::bench;

int main() {
  banner("Fig. 10 — Optimal number of parallel parsers and indexers",
         "Wei & JaJa 2011, Fig. 10 (DES on measured stage costs)");

  auto spec = clueweb_like(scale());
  spec.total_bytes = static_cast<std::uint64_t>(24.0 * scale() * (1 << 20));
  spec.file_bytes = 2u << 20;
  const auto coll = cached_collection(spec);
  std::printf("Corpus: %s uncompressed, %zu files\n",
              format_bytes(coll.total_uncompressed()).c_str(), coll.files.size());

  // One real build per CPU-indexer count (with and without GPUs): the
  // popularity split depends on the indexer configuration.
  auto build_records = [&](std::size_t n_cpu, std::size_t n_gpu) {
    PipelineConfig config;
    config.parsers = 2;  // irrelevant to recorded per-run costs
    config.cpu_indexers = n_cpu;
    config.gpus = n_gpu;
    return measured_report(coll, config).runs;  // best-of-2 stage costs
  };

  PipelineSimulator sim;  // paper platform: 8 cores, 100 MB/s disk, 2 GPUs
  std::printf("\n%-4s %26s %26s %20s\n", "M", "(1) M par + (8-M) CPU idx",
              "(2) + 2 GPU indexers", "(3) parsers only");
  std::printf("%-4s %13s %12s %13s %12s %20s\n", "", "MB/s", "", "MB/s", "", "MB/s");
  row_sep(84);

  std::vector<std::array<double, 3>> results;
  for (std::size_t m = 1; m <= 7; ++m) {
    const std::size_t n_cpu = 8 - m;
    const auto rec_cpu = build_records(n_cpu, 0);
    const auto rec_het = build_records(n_cpu, 2);

    SimPipelineConfig c1;
    c1.parsers = m;
    c1.cpu_indexers = n_cpu;
    c1.gpus = 0;
    const auto r1 = sim.simulate(rec_cpu, c1);

    SimPipelineConfig c2 = c1;
    c2.gpus = 2;
    const auto r2 = sim.simulate(rec_het, c2);

    SimPipelineConfig c3;
    c3.parsers = m;
    c3.indexing_enabled = false;
    const auto r3 = sim.simulate(rec_cpu, c3);

    results.push_back({r1.throughput_mb_s(), r2.throughput_mb_s(), r3.throughput_mb_s()});
    std::printf("%-4zu %13.2f %12s %13.2f %12s %20.2f\n", m, r1.throughput_mb_s(), "",
                r2.throughput_mb_s(), "", r3.throughput_mb_s());
  }

  // ASCII rendition of the figure.
  std::printf("\nThroughput vs parsers (#=scenario2 +GPU, o=scenario1 CPU-only, .=parse-only):\n");
  double peak = 0;
  for (const auto& r : results)
    for (const double v : r) peak = std::max(peak, v);
  for (std::size_t m = 0; m < results.size(); ++m) {
    auto bar = [&](double v) { return static_cast<int>(v / peak * 56); };
    std::printf("M=%zu |", m + 1);
    const int b2 = bar(results[m][1]), b1 = bar(results[m][0]), b3 = bar(results[m][2]);
    for (int i = 0; i <= std::max({b1, b2, b3}); ++i) {
      char c = ' ';
      if (i == b3) c = '.';
      if (i == b1) c = 'o';
      if (i == b2) c = '#';
      std::putchar(c);
    }
    std::putchar('\n');
  }

  // Shape checks mirroring the paper's reading of Fig. 10.
  // Early scaling: the best of M=3/M=4 over M=1 (single-run stage-cost
  // measurements carry noise; one M must show ≥2.4×).
  const bool linear_early =
      std::max(results[2][0], results[3][0]) > results[0][0] * 2.4;
  const bool gpu_helps_late = results[5][1] > results[5][0] * 1.05;  // M=6
  const bool scenario3_upper = results[6][2] >= results[6][0] * 0.95;
  std::printf("\nShape checks: near-linear early scaling: %s; GPUs lift M=6: %s; "
              "parse-only is the envelope: %s\n",
              linear_early ? "PASS" : "MISS", gpu_helps_late ? "PASS" : "MISS",
              scenario3_upper ? "PASS" : "MISS");
  std::printf("Paper: linear to M≈5; beyond that 8−M CPU indexers lag without GPUs;\n"
              "with 2 GPUs, 6 parsers + 2 CPU indexers match the parse rate.\n");
  return 0;
}
