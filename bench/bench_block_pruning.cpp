/// \file bench_block_pruning.cpp
/// Block-Max MaxScore pruning versus the exhaustive scorer on the same
/// disjunctive workload (docs/SERVING.md, not a paper table): per-query
/// latency percentiles, blocks skipped, and postings decoded, swept over k
/// and query arity. Writes a machine-readable summary to BENCH_pruning.json
/// (path overridable via HETINDEX_BENCH_JSON) — scripts/tier1.sh archives
/// it next to the build tree. (BENCH_search.json now belongs to
/// bench_search_qps's per-class mixed workload.)

#include <algorithm>
#include <random>
#include <vector>

#include "bench_common.hpp"
#include "obs/json.hpp"
#include "util/timer.hpp"

using namespace hetindex;
using namespace hetindex::bench;

namespace {

struct Row {
  std::string label;
  std::size_t k = 0;
  double pruned_p50_us = 0, pruned_p95_us = 0;
  double exhaustive_p50_us = 0, exhaustive_p95_us = 0;
  double speedup = 0;
  std::uint64_t blocks_skipped = 0;
};

double pct(std::vector<double>& v, double q) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  return v[std::min(v.size() - 1, static_cast<std::size_t>(q * v.size()))] * 1e6;
}

}  // namespace

int main() {
  banner("Block-Max MaxScore: pruned vs exhaustive top-k",
         "serving extension over the §III inverted files (not a paper table)");

  CollectionSpec spec = wikipedia_like();
  spec.total_bytes = static_cast<std::uint64_t>(24.0 * (1 << 20) * scale());
  const auto coll = cached_collection(spec);

  const std::string index_dir = bench_dir() + "/block_pruning_idx";
  std::filesystem::remove_all(index_dir);
  IndexBuilder builder;
  builder.parsers(2).cpu_indexers(2).emit_segment(true);
  const auto report = builder.build(coll.paths(), index_dir);
  const auto index = InvertedIndex::open(index_dir, {}).value();
  const auto docs = DocMap::open(doc_map_path(index_dir));
  std::printf("corpus: %llu docs, %llu terms; skip tables: %s\n\n",
              static_cast<unsigned long long>(report.documents),
              static_cast<unsigned long long>(report.terms),
              index.has_block_index() ? "present" : "ABSENT (no pruning)");

  // Skew the workload toward frequent terms: that is where block skipping
  // pays (long lists, low per-posting value).
  std::vector<std::string> vocab;
  index.for_each_term([&vocab](std::string_view t) { vocab.emplace_back(t); });
  std::sort(vocab.begin(), vocab.end(), [&index](const auto& a, const auto& b) {
    const auto pa = index.lookup(a), pb = index.lookup(b);
    return (pa ? pa->doc_ids.size() : 0) > (pb ? pb->doc_ids.size() : 0);
  });
  if (vocab.size() > 512) vocab.resize(512);

  std::mt19937 rng(17);
  std::uniform_int_distribution<std::size_t> pick(0, vocab.size() - 1);
  std::vector<std::vector<std::string>> queries;
  for (std::size_t q = 0; q < 128; ++q) {
    std::vector<std::string> terms;
    for (std::size_t t = 0; t < 2 + q % 4; ++t) terms.push_back(vocab[pick(rng)]);
    queries.push_back(std::move(terms));
  }

  std::printf("%-10s %6s %12s %12s %12s %10s %12s\n", "executor", "k", "p50 us",
              "p95 us", "exh p50 us", "speedup", "blocks skip");
  row_sep(80);

  std::vector<Row> rows;
  for (const std::size_t k : {10u, 100u}) {
    Row row;
    row.label = "k" + std::to_string(k);
    row.k = k;
    for (const bool exhaustive : {true, false}) {
      const auto searcher_ptr = Searcher::open(SearchSource::batch(index, docs)).value();
      const Searcher& searcher = *searcher_ptr;
      const auto before =
          searcher.metrics().snapshot().counter("search_blocks_skipped_total");
      std::vector<double> lat;
      for (int pass = 0; pass < 3; ++pass) {
        for (const auto& terms : queries) {
          QueryRequest request;
          request.query = Query::bag(terms);
          request.k = k;
          request.exhaustive = exhaustive;
          request.use_result_cache = false;
          const WallTimer t;
          const auto r = searcher.search(request);
          if (r.has_value()) lat.push_back(t.seconds());
        }
      }
      if (exhaustive) {
        row.exhaustive_p50_us = pct(lat, 0.50);
        row.exhaustive_p95_us = pct(lat, 0.95);
      } else {
        row.pruned_p50_us = pct(lat, 0.50);
        row.pruned_p95_us = pct(lat, 0.95);
        row.blocks_skipped =
            searcher.metrics().snapshot().counter("search_blocks_skipped_total") -
            before;
      }
    }
    row.speedup = row.exhaustive_p50_us / std::max(row.pruned_p50_us, 1e-9);
    std::printf("%-10s %6zu %12.1f %12.1f %12.1f %9.2fx %12llu\n", "maxscore",
                row.k, row.pruned_p50_us, row.pruned_p95_us, row.exhaustive_p50_us,
                row.speedup, static_cast<unsigned long long>(row.blocks_skipped));
    rows.push_back(std::move(row));
  }

  // Machine-readable summary (consumed by CI trend tooling).
  std::string json = "{\n  \"bench\": \"block_pruning\",\n  \"rows\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& r = rows[i];
    json += "    {\"k\": " + std::to_string(r.k) +
            ", \"pruned_p50_us\": " + obs::json_number(r.pruned_p50_us) +
            ", \"pruned_p95_us\": " + obs::json_number(r.pruned_p95_us) +
            ", \"exhaustive_p50_us\": " + obs::json_number(r.exhaustive_p50_us) +
            ", \"exhaustive_p95_us\": " + obs::json_number(r.exhaustive_p95_us) +
            ", \"speedup\": " + obs::json_number(r.speedup) +
            ", \"blocks_skipped\": " + std::to_string(r.blocks_skipped) + "}";
    json += (i + 1 < rows.size()) ? ",\n" : "\n";
  }
  json += "  ]\n}\n";
  const char* out = std::getenv("HETINDEX_BENCH_JSON");
  const std::string json_path = out != nullptr ? out : "BENCH_pruning.json";
  write_file(json_path, std::vector<std::uint8_t>(json.begin(), json.end()));
  std::printf("\nwrote %s\n", json_path.c_str());

  bool ok = true;
  for (const auto& r : rows) {
    if (r.blocks_skipped == 0) {
      std::printf("FAIL: no blocks skipped at k=%zu\n", r.k);
      ok = false;
    }
  }
  return ok ? 0 : 1;
}
