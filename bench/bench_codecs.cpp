/// \file bench_codecs.cpp
/// Postings-compression comparison (§II / §III.E): gap encoding with
/// variable-byte (the pipeline default), Elias-γ and Golomb over realistic
/// postings lists (Zipf term frequencies → geometric-ish gaps). Reports
/// bits per posting and encode/decode throughput via google-benchmark.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <vector>

#include "codec/posting_codecs.hpp"
#include "util/rng.hpp"
#include "util/zipf.hpp"

namespace hetindex {
namespace {

/// A bundle of postings lists with the gap profile of a Zipf corpus: a few
/// dense lists (frequent terms) and many sparse ones.
struct Workload {
  std::vector<std::vector<std::uint32_t>> doc_ids;
  std::vector<std::vector<std::uint32_t>> tfs;
  std::uint64_t postings = 0;
};

const Workload& workload() {
  static const Workload w = [] {
    Workload wl;
    Rng rng(42);
    for (int list = 0; list < 400; ++list) {
      // List density follows Zipf: list k has ~N/k postings.
      const std::size_t n = std::max<std::size_t>(2, 20000 / (list + 1));
      std::vector<std::uint32_t> ids;
      std::vector<std::uint32_t> tfs;
      std::uint32_t doc = 0;
      const std::uint64_t max_gap = 2 * (1000000 / n) + 2;
      for (std::size_t i = 0; i < n; ++i) {
        doc += 1 + static_cast<std::uint32_t>(rng.below(max_gap));
        ids.push_back(doc);
        tfs.push_back(1 + static_cast<std::uint32_t>(rng.below(4)));
      }
      wl.postings += n;
      wl.doc_ids.push_back(std::move(ids));
      wl.tfs.push_back(std::move(tfs));
    }
    return wl;
  }();
  return w;
}

void BM_Encode(benchmark::State& state) {
  const auto codec = static_cast<PostingCodec>(state.range(0));
  const auto& wl = workload();
  std::uint64_t bytes = 0;
  for (auto _ : state) {
    bytes = 0;
    for (std::size_t i = 0; i < wl.doc_ids.size(); ++i) {
      const auto enc = encode_postings(codec, wl.doc_ids[i], wl.tfs[i]);
      bytes += enc.size();
      benchmark::DoNotOptimize(enc.data());
    }
  }
  state.counters["bits/posting"] =
      static_cast<double>(bytes) * 8.0 / static_cast<double>(wl.postings);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * wl.postings));
}

void BM_Decode(benchmark::State& state) {
  // The codec is read back from the stream itself; range(0) only picks
  // what gets encoded.
  const auto codec = static_cast<PostingCodec>(state.range(0));
  const auto& wl = workload();
  std::vector<std::vector<std::uint8_t>> encoded;
  for (std::size_t i = 0; i < wl.doc_ids.size(); ++i)
    encoded.push_back(encode_postings(codec, wl.doc_ids[i], wl.tfs[i]));
  std::vector<std::uint32_t> ids, tfs;
  for (auto _ : state) {
    for (const auto& enc : encoded) {
      ids.clear();
      tfs.clear();
      decode_postings(enc.data(), enc.size(), ids, tfs);
      benchmark::DoNotOptimize(ids.data());
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * wl.postings));
}

BENCHMARK(BM_Encode)
    ->Arg(static_cast<int>(PostingCodec::kVByte))
    ->Arg(static_cast<int>(PostingCodec::kGamma))
    ->Arg(static_cast<int>(PostingCodec::kGolomb))
    ->Arg(static_cast<int>(PostingCodec::kBitPacked))
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Decode)
    ->Arg(static_cast<int>(PostingCodec::kVByte))
    ->Arg(static_cast<int>(PostingCodec::kGamma))
    ->Arg(static_cast<int>(PostingCodec::kGolomb))
    ->Arg(static_cast<int>(PostingCodec::kBitPacked))
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace hetindex

int main(int argc, char** argv) {
  std::printf("Codec comparison (arg 0=vbyte, 1=gamma, 2=golomb, 3=bitpacked).\n"
              "The paper's pipeline uses gap + variable-byte (§III.E); γ/Golomb\n"
              "trade decode speed for density (§II); bit-packing is the dense-\n"
              "block fast path.\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
