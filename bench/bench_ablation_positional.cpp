/// \file bench_ablation_positional.cpp
/// Cost of positional postings (§IV.D: the Ivory comparison "generates
/// positional postings lists, which will add some extra cost but we don't
/// believe this will alter the overall throughput numbers significantly").
/// Builds the same collection with and without positions and compares
/// indexing work, simulated GPU time, run-file sizes and query capability.

#include <cstdio>
#include <filesystem>

#include "bench_common.hpp"
#include "pipeline/engine.hpp"
#include "postings/boolean_ops.hpp"
#include "postings/query.hpp"
#include "sim/pipeline_sim.hpp"

using namespace hetindex;
using namespace hetindex::bench;

namespace {

std::uint64_t dir_bytes(const std::string& dir) {
  std::uint64_t total = 0;
  for (const auto& e : std::filesystem::directory_iterator(dir)) {
    if (e.is_regular_file()) total += e.file_size();
  }
  return total;
}

}  // namespace

int main() {
  banner("Ablation — positional postings cost", "Wei & JaJa 2011, §IV.D (Ivory footnote)");

  auto spec = clueweb_like(scale());
  spec.total_bytes = static_cast<std::uint64_t>(16.0 * scale() * (1 << 20));
  spec.file_bytes = 2u << 20;
  const auto coll = cached_collection(spec);

  struct Outcome {
    double indexing_seconds;
    double total_seconds;
    std::uint64_t index_bytes;
  };
  PipelineSimulator sim;
  Outcome outcomes[2];
  for (int positional = 0; positional < 2; ++positional) {
    PipelineConfig pc;
    pc.parsers = 2;
    pc.cpu_indexers = 2;
    pc.gpus = 2;
    pc.parser.record_positions = positional != 0;
    const auto denoised = measured_report(coll, pc);  // best-of-2 stage costs
    pc.output_dir = bench_dir() + "/positional_out";
    PipelineEngine engine(pc);
    const auto report = engine.build(coll.paths());  // keeps output on disk
    SimPipelineConfig sc;
    sc.parsers = 6;
    sc.cpu_indexers = 2;
    sc.gpus = 2;
    const auto des = sim.simulate(report.runs, sc);
    outcomes[positional] = {des.indexing_seconds, des.total_seconds,
                            dir_bytes(pc.output_dir)};
    if (positional == 0) std::filesystem::remove_all(pc.output_dir);
  }

  std::printf("\n%-28s %16s %16s\n", "", "doc+tf only", "with positions");
  row_sep(64);
  std::printf("%-28s %16.3f %16.3f\n", "Indexing time (s, DES)",
              outcomes[0].indexing_seconds, outcomes[1].indexing_seconds);
  std::printf("%-28s %16.3f %16.3f\n", "Pipeline total (s, DES)",
              outcomes[0].total_seconds, outcomes[1].total_seconds);
  std::printf("%-28s %16s %16s\n", "Index size on disk",
              format_bytes(outcomes[0].index_bytes).c_str(),
              format_bytes(outcomes[1].index_bytes).c_str());

  const double time_overhead =
      outcomes[1].total_seconds / outcomes[0].total_seconds - 1.0;
  const double size_overhead = static_cast<double>(outcomes[1].index_bytes) /
                                   static_cast<double>(outcomes[0].index_bytes) -
                               1.0;
  std::printf("\nOverheads: time +%.1f%%, index size +%.0f%%\n", time_overhead * 100,
              size_overhead * 100);

  // Demonstrate what the extra bytes buy: a phrase query.
  const auto index = InvertedIndex::open(bench_dir() + "/positional_out", {}).value();
  std::size_t phrase_capable = 0;
  if (!index.entries().empty()) {
    const auto p = index.lookup_positional(index.entries()[0].term);
    phrase_capable = p && !p->positions.empty() ? 1 : 0;
  }
  std::filesystem::remove_all(bench_dir() + "/positional_out");

  std::printf("\nShape checks: positional index supports position lookups: %s; time\n"
              "overhead is modest (<35%%, paper: \"won't alter throughput numbers\n"
              "significantly\"): %s; positions measurably grow the index (>5%% — most\n"
              "terms have tf=1, so one extra gap byte per posting; the shared\n"
              "dictionary file dilutes the ratio further): %s\n",
              phrase_capable ? "PASS" : "MISS", time_overhead < 0.35 ? "PASS" : "MISS",
              size_overhead > 0.05 ? "PASS" : "MISS");
  return 0;
}
