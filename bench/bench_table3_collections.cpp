/// \file bench_table3_collections.cpp
/// Reproduces Table III: "Statistics of Document Collections" for the
/// three synthetic stand-ins (ClueWeb09-like, Wikipedia01-07-like, Library
/// of Congress-like). Statistics are measured through the real parse path
/// (tokenize → Porter stem → stop-word removal), exactly the token/term
/// definitions the paper uses.

#include <cstdio>

#include "bench_common.hpp"

using namespace hetindex;
using namespace hetindex::bench;

int main() {
  banner("Table III — Statistics of Document Collections (synthetic stand-ins)",
         "Wei & JaJa 2011, Table III (scaled by HETINDEX_SCALE)");

  struct Row {
    const char* label;
    CollectionSpec spec;
  };
  const double s = scale();
  const Row rows[] = {
      {"ClueWeb09-like", clueweb_like(s)},
      {"Wikipedia-like", wikipedia_like(s)},
      {"Congress-like", congress_like(s)},
  };

  std::printf("%-18s %12s %14s %10s %12s %14s %8s\n", "Collection", "Compressed",
              "Uncompressed", "Docs", "Terms", "Tokens", "AvgTokLen");
  row_sep(96);
  for (const auto& row : rows) {
    const auto coll = cached_collection(row.spec);
    const auto stats = analyze_collection(coll.paths());
    std::printf("%-18s %12s %14s %10llu %12llu %14llu %8.2f\n", row.label,
                format_bytes(stats.compressed_bytes).c_str(),
                format_bytes(stats.uncompressed_bytes).c_str(),
                static_cast<unsigned long long>(stats.documents),
                static_cast<unsigned long long>(stats.terms),
                static_cast<unsigned long long>(stats.tokens), stats.mean_token_length);
  }
  std::printf(
      "\nPaper (full-scale): ClueWeb09 230GB/1422GB, 50.2M docs, 84.8M terms,\n"
      "32.6G tokens; Wikipedia 29GB/79GB, 16.6M docs, 9.4M terms, 9.4G tokens;\n"
      "Congress 96GB/507GB, 29.2M docs, 7.5M terms, 16.9G tokens.\n"
      "Shape checks: ClueWeb has the largest vocabulary and token count; the\n"
      "Wikipedia stand-in is plain text (higher tokens/byte); compression is\n"
      "several-fold on all three. Mean stemmed token length ~6.6 (§III.B.1).\n");
  return 0;
}
