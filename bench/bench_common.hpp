#pragma once
/// \file bench_common.hpp
/// Shared plumbing for the table/figure reproduction harnesses: corpus
/// caching (collections are generated once per scale and reused across
/// bench binaries), table formatting, and the scale knob.
///
/// Environment:
///   HETINDEX_SCALE      multiplier on the default corpus sizes (default 1;
///                       the paper's corpora are TB-scale — scale up on
///                       bigger machines to tighten the curves)
///   HETINDEX_BENCH_DIR  corpus cache directory (default /tmp/hetindex_bench)

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

// The benches program against the public facade like any downstream tool;
// binary_io stays an internal include (file-cache helpers, not index API).
#include "core/hetindex.hpp"
#include "util/binary_io.hpp"

namespace hetindex::bench {

inline double scale() {
  if (const char* env = std::getenv("HETINDEX_SCALE")) return std::atof(env);
  return 1.0;
}

inline std::string bench_dir() {
  if (const char* env = std::getenv("HETINDEX_BENCH_DIR")) return env;
  return "/tmp/hetindex_bench";
}

/// Generates (or reuses a cached copy of) a collection. The cache key is
/// the spec name + total size, so different scales regenerate.
inline constexpr int kCorpusFormatVersion = 4;

inline Collection cached_collection(const CollectionSpec& spec) {
  const std::string dir = bench_dir() + "/" + spec.name + "_" +
                          std::to_string(spec.total_bytes) + "_v" +
                          std::to_string(kCorpusFormatVersion);
  const std::string stamp = dir + "/.complete";
  if (file_exists(stamp)) {
    // Rebuild the manifest from the directory.
    Collection coll;
    coll.spec = spec;
    for (std::size_t f = 0;; ++f) {
      GeneratedFile gf;
      gf.path = dir + "/" + spec.name + "_" + std::to_string(f) + ".hdc";
      if (!file_exists(gf.path)) break;
      const auto file = read_file(gf.path);
      gf.compressed_bytes = file.size();
      gf.doc_count = container_header_doc_count(file.data(), file.size());
      gf.uncompressed_bytes = container_uncompressed_size(gf.path);
      coll.files.push_back(std::move(gf));
    }
    if (!coll.files.empty()) return coll;
  }
  std::filesystem::create_directories(dir);
  auto coll = generate_collection(spec, dir);
  write_file(stamp, {});
  return coll;
}

/// Builds the pipeline `repeats` times over the same collection and keeps
/// the element-wise minimum of every measured stage cost. Shared-host
/// timing noise (scheduler preemption, page-cache flushes) only ever
/// inflates wall times, so the per-run minimum is the best estimator of
/// the true cost; simulated GPU timings are deterministic and taken from
/// the first build.
inline PipelineReport measured_report(const Collection& coll, PipelineConfig config,
                                      int repeats = 2) {
  PipelineReport best;
  for (int r = 0; r < repeats; ++r) {
    config.output_dir = bench_dir() + "/probe_out";
    PipelineEngine engine(config);
    auto report = engine.build(coll.paths());
    std::filesystem::remove_all(config.output_dir);
    if (r == 0) {
      best = std::move(report);
      continue;
    }
    best.sampling_seconds = std::min(best.sampling_seconds, report.sampling_seconds);
    best.dict_combine_seconds =
        std::min(best.dict_combine_seconds, report.dict_combine_seconds);
    best.dict_write_seconds = std::min(best.dict_write_seconds, report.dict_write_seconds);
    for (std::size_t i = 0; i < best.runs.size() && i < report.runs.size(); ++i) {
      auto& b = best.runs[i];
      const auto& n = report.runs[i];
      b.read_seconds = std::min(b.read_seconds, n.read_seconds);
      b.decompress_seconds = std::min(b.decompress_seconds, n.decompress_seconds);
      b.parse_seconds = std::min(b.parse_seconds, n.parse_seconds);
      b.flush_seconds = std::min(b.flush_seconds, n.flush_seconds);
      for (std::size_t j = 0;
           j < b.cpu_index_seconds.size() && j < n.cpu_index_seconds.size(); ++j) {
        b.cpu_index_seconds[j] = std::min(b.cpu_index_seconds[j], n.cpu_index_seconds[j]);
      }
    }
  }
  return best;
}

/// Section header in the bench output.
inline void banner(const std::string& title, const std::string& paper_ref) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("Reproduces: %s\n", paper_ref.c_str());
  std::printf("================================================================\n");
}

inline void row_sep(int width = 72) {
  for (int i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

}  // namespace hetindex::bench
