/// \file bench_fig11_per_file_throughput.cpp
/// Reproduces Fig. 11: "Scalability of Parallel Indexers" — per-file
/// indexing throughput over the file sequence for scenarios (ii) 1 CPU,
/// (iii) 2 CPU, (iv) 2 CPU + 2 GPU. Expected shape (paper): a sharp
/// decrease near the beginning that flattens (the inverse of B-tree depth:
/// trees deepen as the dictionary grows), and a visible drop after ~80% of
/// the files where the collection switches to Wikipedia-like content whose
/// characteristics the pre-sampled CPU/GPU parameters do not reflect.

#include <cstdio>
#include <filesystem>

#include "bench_common.hpp"
#include "pipeline/engine.hpp"
#include "sim/pipeline_sim.hpp"

using namespace hetindex;
using namespace hetindex::bench;

int main() {
  banner("Fig. 11 — Per-file indexing throughput over the collection",
         "Wei & JaJa 2011, Fig. 11");

  auto spec = clueweb_like(scale());
  spec.total_bytes = static_cast<std::uint64_t>(48.0 * scale() * (1 << 20));
  spec.file_bytes = 1u << 20;  // many files → a usable x-axis
  spec.shift_fraction = 0.2;   // the Wikipedia tail (files 1200–1492 / 1492)
  const auto coll = cached_collection(spec);
  std::printf("Corpus: %s over %zu files; last 20%% are Wikipedia-like\n",
              format_bytes(coll.total_uncompressed()).c_str(), coll.files.size());

  struct Scenario {
    const char* label;
    std::size_t cpus, gpus;
  };
  const Scenario scenarios[] = {
      {"(ii)  1 CPU", 1, 0}, {"(iii) 2 CPU", 2, 0}, {"(iv)  2 CPU + 2 GPU", 2, 2}};

  std::vector<std::vector<double>> series;  // per scenario: MB/s per file
  for (const auto& sc : scenarios) {
    PipelineConfig pc;
    pc.parsers = 2;
    pc.cpu_indexers = sc.cpus;
    pc.gpus = sc.gpus;
    const auto report = measured_report(coll, pc);  // best-of-2 stage costs

    PipelineSimulator sim;
    SimPipelineConfig cfg;
    cfg.parsers = 6;
    cfg.cpu_indexers = sc.cpus;
    cfg.gpus = sc.gpus;
    const auto result = sim.simulate(report.runs, cfg);

    std::vector<double> mb_s;
    for (std::size_t r = 0; r < report.runs.size(); ++r) {
      const double secs = result.per_run_index_seconds[r];
      mb_s.push_back(secs > 0 ? static_cast<double>(report.runs[r].source_bytes) /
                                    (1024.0 * 1024.0) / secs
                              : 0.0);
    }
    series.push_back(std::move(mb_s));
  }

  // Table of the series (bucketed to keep the output readable).
  const std::size_t files = series[0].size();
  const std::size_t bucket = std::max<std::size_t>(1, files / 16);
  std::printf("\n%-12s %16s %16s %20s\n", "File index", scenarios[0].label,
              scenarios[1].label, scenarios[2].label);
  row_sep(70);
  for (std::size_t start = 0; start < files; start += bucket) {
    const std::size_t end = std::min(files, start + bucket);
    double avg[3] = {0, 0, 0};
    for (int s = 0; s < 3; ++s) {
      for (std::size_t i = start; i < end; ++i) avg[s] += series[s][i];
      avg[s] /= static_cast<double>(end - start);
    }
    std::printf("%4zu-%-6zu %14.1f %16.1f %20.1f\n", start, end - 1, avg[0], avg[1],
                avg[2]);
  }

  // Shape checks.
  auto mean_range = [&](int s, double lo, double hi) {
    const auto a = static_cast<std::size_t>(lo * static_cast<double>(files));
    const auto b = static_cast<std::size_t>(hi * static_cast<double>(files));
    double m = 0;
    for (std::size_t i = a; i < b; ++i) m += series[s][i];
    return m / static_cast<double>(b - a);
  };
  // 1) Early decline: first 5% of files faster than the 40–60% plateau.
  const bool early_decline = mean_range(2, 0.0, 0.05) > mean_range(2, 0.4, 0.6) * 1.1;
  // 2) Wikipedia-tail drop for the heterogeneous scenario.
  const double before = mean_range(2, 0.6, 0.78);
  const double after = mean_range(2, 0.82, 1.0);
  const bool tail_drop = after < before * 0.9;
  // 3) Ordering: (iv) ≥ (iii) ≥ (ii) on the main body.
  const bool ordering = mean_range(2, 0.2, 0.7) > mean_range(1, 0.2, 0.7) &&
                        mean_range(1, 0.2, 0.7) > mean_range(0, 0.2, 0.7);
  std::printf("\nShape checks: sharp early decrease then plateau: %s; throughput drop\n"
              "at the Wikipedia tail (%.1f → %.1f MB/s): %s; (iv) > (iii) > (ii): %s\n",
              early_decline ? "PASS" : "MISS", before, after, tail_drop ? "PASS" : "MISS",
              ordering ? "PASS" : "MISS");
  std::printf("Paper: slope follows the inverse of B-tree depth; files 1200+ (Wikipedia)\n"
              "show a significant drop, hitting the CPU+GPU configuration hardest because\n"
              "the sampled split no longer reflects the data.\n");
  return 0;
}
