/// \file bench_dictionary.cpp
/// Dictionary micro-benchmarks (google-benchmark): trie-table index
/// computation (Table I), B-tree insert/find throughput with and without
/// the node string caches (Table II), and hybrid-dictionary insert
/// throughput vs a single global B-tree — the §III.B design points as
/// numbers rather than end-to-end shapes.

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "dict/btree.hpp"
#include "dict/dictionary.hpp"
#include "dict/trie_table.hpp"
#include "corpus/synthetic.hpp"
#include "util/rng.hpp"
#include "util/zipf.hpp"

namespace hetindex {
namespace {

const std::vector<std::string>& term_stream() {
  static const std::vector<std::string> terms = [] {
    const Vocabulary vocab(100000, 0.03, 0.01, 21);
    ZipfSampler zipf(vocab.size(), 1.0);
    Rng rng(4);
    std::vector<std::string> out;
    out.reserve(500000);
    for (int i = 0; i < 500000; ++i) out.push_back(vocab.word(zipf(rng)));
    return out;
  }();
  return terms;
}

void BM_TrieIndex(benchmark::State& state) {
  const auto& terms = term_stream();
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(trie_index(terms[i]));
    if (++i == terms.size()) i = 0;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TrieIndex);

void BM_BTreeInsert(benchmark::State& state) {
  const bool use_cache = state.range(0) != 0;
  const auto& terms = term_stream();
  for (auto _ : state) {
    Arena arena;
    BTree tree(arena, use_cache);
    for (std::size_t i = 0; i < 50000; ++i) {
      const auto& t = terms[i];
      tree.find_or_insert(t.size() > 3 ? std::string_view(t).substr(3) : std::string_view(t));
    }
    benchmark::DoNotOptimize(tree.size());
  }
  state.SetItemsProcessed(state.iterations() * 50000);
  state.SetLabel(use_cache ? "string caches ON" : "string caches OFF");
}
BENCHMARK(BM_BTreeInsert)->Arg(1)->Arg(0)->Unit(benchmark::kMillisecond);

void BM_HybridDictionaryInsert(benchmark::State& state) {
  const auto& terms = term_stream();
  for (auto _ : state) {
    DictionaryShard shard;
    for (std::size_t i = 0; i < 50000; ++i) shard.insert_term(terms[i]);
    benchmark::DoNotOptimize(shard.term_count());
  }
  state.SetItemsProcessed(state.iterations() * 50000);
  state.SetLabel("trie + per-collection B-trees");
}
BENCHMARK(BM_HybridDictionaryInsert)->Unit(benchmark::kMillisecond);

void BM_SingleBTreeInsert(benchmark::State& state) {
  const auto& terms = term_stream();
  for (auto _ : state) {
    Arena arena;
    BTree tree(arena);
    for (std::size_t i = 0; i < 50000; ++i) tree.find_or_insert(terms[i]);
    benchmark::DoNotOptimize(tree.size());
  }
  state.SetItemsProcessed(state.iterations() * 50000);
  state.SetLabel("one global B-tree, full terms");
}
BENCHMARK(BM_SingleBTreeInsert)->Unit(benchmark::kMillisecond);

void BM_DictionaryFind(benchmark::State& state) {
  const auto& terms = term_stream();
  DictionaryShard shard;
  for (std::size_t i = 0; i < 100000; ++i) shard.insert_term(terms[i]);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(shard.find_term(terms[i]));
    if (++i == terms.size()) i = 0;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DictionaryFind);

}  // namespace
}  // namespace hetindex

BENCHMARK_MAIN();
