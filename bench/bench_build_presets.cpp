/// \file bench_build_presets.cpp
/// Pinned-preset batch-build benchmark for the ingest readahead path
/// (ISSUE 10; in the spirit of "The Performance Envelope of Inverted
/// Indexing on Modern Hardware"): fixed corpus seed and size presets —
/// deliberately NOT scaled by HETINDEX_SCALE, so numbers are comparable
/// across machines and re-anchor points — built once with the serialized
/// depth-1 read discipline (the paper's §III.F baseline) and once at
/// prefetch depth 8. The figure of merit is read-phase throughput:
/// compressed input bytes over the time parsers spent blocked waiting for
/// file bytes (PipelineReport::read_stall_seconds). Wall-clock build time
/// is reported too, but on small page-cache-hot corpora it is parse-bound
/// and nearly flat — the stall metric is what the prefetcher moves.
///
/// Gates (exit 1): speedup < 1.3x on any preset, or the emitted segment
/// differing between depths or backends (readahead must be bit-invisible).
/// Writes BENCH_build.json (HETINDEX_BENCH_JSON overrides the path).

#include <string>
#include <vector>

#include "bench_common.hpp"
#include "io/async_reader.hpp"
#include "obs/json.hpp"

using namespace hetindex;
using namespace hetindex::bench;

namespace {

struct Preset {
  std::string name;
  std::uint64_t total_bytes;
  std::uint64_t file_bytes;
};

struct Measured {
  double read_stall_seconds = 0;
  double total_seconds = 0;
  std::string read_backend;
  std::uint64_t compressed_bytes = 0;
  std::vector<std::uint8_t> segment;
};

struct Row {
  std::string preset;
  std::size_t files = 0;
  std::uint64_t compressed_bytes = 0;
  Measured serial;     // depth 1
  Measured prefetch;   // depth 8
  double speedup = 0;  // read-phase throughput ratio
  bool identical = false;
};

double throughput_mb_s(std::uint64_t bytes, double stall_seconds) {
  return static_cast<double>(bytes) / (1024.0 * 1024.0) / std::max(stall_seconds, 1e-6);
}

/// Best-of-N build at one prefetch depth: min stall + min wall across
/// repeats (shared-host noise only inflates both).
Measured build_at(const Collection& coll, std::size_t depth, io::ReadBackend backend,
                  const std::string& out_dir, int repeats = 2) {
  Measured m;
  for (int r = 0; r < repeats; ++r) {
    std::filesystem::remove_all(out_dir);
    PipelineConfig config;
    config.parsers = 2;
    config.cpu_indexers = 2;
    config.gpus = 0;
    config.emit_segment = true;
    config.read_prefetch_depth = depth;
    config.read_backend = backend;
    config.output_dir = out_dir;
    PipelineEngine engine(config);
    const auto report = engine.build(coll.paths());
    if (!report.ok()) {
      std::fprintf(stderr, "FAIL: build error at depth %zu: %s\n", depth,
                   report.error->to_string().c_str());
      std::exit(1);
    }
    if (r == 0) {
      m.read_stall_seconds = report.read_stall_seconds;
      m.total_seconds = report.total_seconds;
      m.read_backend = report.read_backend;
      m.compressed_bytes = report.compressed_bytes;
      m.segment = read_file(IndexLayout::segment_path(out_dir));
    } else {
      m.read_stall_seconds = std::min(m.read_stall_seconds, report.read_stall_seconds);
      m.total_seconds = std::min(m.total_seconds, report.total_seconds);
    }
  }
  std::filesystem::remove_all(out_dir);
  return m;
}

}  // namespace

int main() {
  banner("Pinned-preset batch build: serialized vs readahead ingest",
         "§III.F read discipline vs ROADMAP item 4 (async batched readahead)");

  // Pinned presets: fixed seed, fixed sizes, HETINDEX_SCALE ignored.
  const std::vector<Preset> presets = {
      {"wiki_8m", 8ull << 20, 128ull << 10},    // 64 files
      {"wiki_24m", 24ull << 20, 256ull << 10},  // 96 files
  };
  const std::string out_dir = bench_dir() + "/build_presets_out";

  std::printf("%-10s %6s %9s %12s %12s %12s %12s %9s %6s\n", "preset", "files",
              "comp MB", "ser stall s", "pre stall s", "ser MB/s", "pre MB/s",
              "speedup", "ident");
  row_sep(96);

  std::vector<Row> rows;
  bool ok = true;
  for (const auto& preset : presets) {
    CollectionSpec spec = wikipedia_like();
    spec.name = "pinned_" + preset.name;
    spec.total_bytes = preset.total_bytes;
    spec.file_bytes = preset.file_bytes;
    spec.seed = 0x9E1D;  // the pin — identical corpus on every run/machine
    const auto coll = cached_collection(spec);

    Row row;
    row.preset = preset.name;
    row.files = coll.files.size();
    row.serial = build_at(coll, /*depth=*/1, io::ReadBackend::kAuto, out_dir);
    row.prefetch = build_at(coll, /*depth=*/8, io::ReadBackend::kAuto, out_dir);
    row.compressed_bytes = row.serial.compressed_bytes;
    row.identical = row.serial.segment == row.prefetch.segment;
    const double serial_mb_s =
        throughput_mb_s(row.compressed_bytes, row.serial.read_stall_seconds);
    const double prefetch_mb_s =
        throughput_mb_s(row.compressed_bytes, row.prefetch.read_stall_seconds);
    row.speedup = prefetch_mb_s / std::max(serial_mb_s, 1e-9);

    // Backend cross-check: the pool path must agree byte-for-byte with
    // whatever auto resolution picked (io_uring on capable hosts).
    if (row.prefetch.read_backend != "thread_pool") {
      const auto pool =
          build_at(coll, /*depth=*/8, io::ReadBackend::kThreadPool, out_dir, 1);
      row.identical = row.identical && pool.segment == row.serial.segment;
    }

    std::printf("%-10s %6zu %9.1f %12.4f %12.4f %12.1f %12.1f %8.2fx %6s\n",
                row.preset.c_str(), row.files,
                static_cast<double>(row.compressed_bytes) / (1024.0 * 1024.0),
                row.serial.read_stall_seconds, row.prefetch.read_stall_seconds,
                serial_mb_s, prefetch_mb_s, row.speedup, row.identical ? "yes" : "NO");
    if (row.speedup < 1.3) {
      std::printf("FAIL: %s read-phase speedup %.2fx < 1.3x\n", row.preset.c_str(),
                  row.speedup);
      ok = false;
    }
    if (!row.identical) {
      std::printf("FAIL: %s segment differs across read paths\n", row.preset.c_str());
      ok = false;
    }
    rows.push_back(std::move(row));
  }
  std::printf("\nread backends: serial=%s prefetch=%s (io_uring %s)\n",
              rows.front().serial.read_backend.c_str(),
              rows.front().prefetch.read_backend.c_str(),
              io::io_uring_available() ? "available" : "unavailable");

  std::string json = "{\n  \"bench\": \"build\",\n  \"rows\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& r = rows[i];
    json += "    {\"preset\": \"" + r.preset + "\"" +
            ", \"files\": " + std::to_string(r.files) +
            ", \"compressed_bytes\": " + std::to_string(r.compressed_bytes) +
            ", \"serial_read_stall_seconds\": " +
            obs::json_number(r.serial.read_stall_seconds) +
            ", \"prefetch_read_stall_seconds\": " +
            obs::json_number(r.prefetch.read_stall_seconds) +
            ", \"serial_total_seconds\": " + obs::json_number(r.serial.total_seconds) +
            ", \"prefetch_total_seconds\": " +
            obs::json_number(r.prefetch.total_seconds) +
            ", \"prefetch_backend\": \"" + r.prefetch.read_backend + "\"" +
            ", \"read_speedup\": " + obs::json_number(r.speedup) +
            ", \"segment_identical\": " + (r.identical ? "true" : "false") + "}";
    json += (i + 1 < rows.size()) ? ",\n" : "\n";
  }
  json += "  ]\n}\n";
  const char* out = std::getenv("HETINDEX_BENCH_JSON");
  const std::string json_path = out != nullptr ? out : "BENCH_build.json";
  write_file(json_path, std::vector<std::uint8_t>(json.begin(), json.end()));
  std::printf("wrote %s\n", json_path.c_str());
  return ok ? 0 : 1;
}
