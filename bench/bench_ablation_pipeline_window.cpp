/// \file bench_ablation_pipeline_window.cpp
/// Ablation of the parser-buffer window (Fig. 9's per-parser output
/// buffers). §IV.B: "the time during which the indexers are waiting for
/// results from the parsers ... is due to the fluctuations between the two
/// pipeline stages, which are very hard to fully control since they are
/// input dependent. Note that this gap can be occasionally severe during
/// some runs." Buffering absorbs those fluctuations: this bench replays
/// real measured per-run costs (which carry natural per-file variance)
/// under window sizes from 1 to 8 buffers per parser.

#include <cstdio>
#include <filesystem>

#include "bench_common.hpp"
#include "pipeline/engine.hpp"
#include "sim/pipeline_sim.hpp"

using namespace hetindex;
using namespace hetindex::bench;

int main() {
  banner("Ablation — parser buffer window (pipeline fluctuations)",
         "Wei & JaJa 2011, §IV.B indexer-wait discussion");

  auto spec = clueweb_like(scale());
  spec.total_bytes = static_cast<std::uint64_t>(24.0 * scale() * (1 << 20));
  spec.file_bytes = 1u << 20;  // many small runs → visible fluctuations
  const auto coll = cached_collection(spec);

  PipelineConfig pc;
  pc.parsers = 2;
  pc.cpu_indexers = 2;
  pc.gpus = 2;
  const auto report = measured_report(coll, pc);  // best-of-2 stage costs

  PipelineSimulator sim;
  std::printf("\n%-10s %14s %18s %16s\n", "Buffers", "Total (s)", "IndexerWait (s)",
              "Throughput MB/s");
  row_sep(64);
  std::vector<double> totals;
  for (const std::size_t buffers : {1u, 2u, 3u, 4u, 6u, 8u}) {
    SimPipelineConfig sc;
    sc.parsers = 6;
    sc.cpu_indexers = 2;
    sc.gpus = 2;
    sc.buffers_per_parser = buffers;
    const auto r = sim.simulate(report.runs, sc);
    totals.push_back(r.total_seconds);
    std::printf("%-10zu %14.3f %18.3f %16.2f\n", buffers, r.total_seconds,
                r.indexer_wait_seconds, r.throughput_mb_s());
  }

  const bool monotone_helpful = totals.back() <= totals.front() * 1.001;

  // The window only binds when stage rates fluctuate around parity; the
  // measured corpus may be firmly one-sided, so stress the mechanism with
  // alternating heavy-parse / heavy-index runs (out of phase — exactly the
  // "fluctuations between the two pipeline stages" of §IV.B).
  std::vector<RunRecord> stress(60);
  for (std::size_t r = 0; r < stress.size(); ++r) {
    auto& run = stress[r];
    run.run_id = r;
    run.compressed_bytes = 1 << 20;
    run.source_bytes = 4 << 20;
    run.decompress_seconds = 0.01;
    run.parse_seconds = (r % 8 < 4) ? 0.40 : 0.05;  // bursts of slow parsing
    run.cpu_index_seconds.assign(2, (r % 8 < 4) ? 0.05 : 0.38);  // ...then slow indexing
    run.gpu_timings.resize(2);
    run.flush_seconds = 0.01;
  }
  std::printf("\nFluctuation stress (alternating slow-parse / slow-index phases):\n");
  std::printf("%-10s %14s %18s\n", "Buffers", "Total (s)", "IndexerWait (s)");
  row_sep(48);
  std::vector<double> stress_totals;
  for (const std::size_t buffers : {1u, 2u, 3u, 4u, 6u, 8u}) {
    SimPipelineConfig sc;
    sc.parsers = 2;
    sc.cpu_indexers = 2;
    sc.gpus = 2;
    sc.buffers_per_parser = buffers;
    const auto r = sim.simulate(stress, sc);
    stress_totals.push_back(r.total_seconds);
    std::printf("%-10zu %14.3f %18.3f\n", buffers, r.total_seconds,
                r.indexer_wait_seconds);
  }

  const bool buffering_absorbs = stress_totals.back() < stress_totals.front() * 0.97;
  const bool diminishing = (stress_totals[1] - stress_totals.back()) <
                           (stress_totals[0] - stress_totals[1]) + 1e-9 ||
                           stress_totals[0] > stress_totals[1];
  std::printf("\nShape checks: larger windows never hurt on the real corpus: %s;\n"
              "buffering absorbs out-of-phase stage fluctuations (stress): %s;\n"
              "returns diminish after a few buffers: %s\n",
              monotone_helpful ? "PASS" : "MISS", buffering_absorbs ? "PASS" : "MISS",
              diminishing ? "PASS" : "MISS");
  return 0;
}
