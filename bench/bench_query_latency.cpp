/// \file bench_query_latency.cpp
/// Read-path comparison: the legacy run-file backend (dictionary + every
/// run file decoded into memory at open) versus the mmapped single-file
/// segment (zero-copy terms, per-lookup lazy decode). Reports open cost,
/// resident index bytes, and per-lookup latency for point, miss, range and
/// prefix queries on the same corpus.

#include <algorithm>
#include <random>

#include "bench_common.hpp"
#include "util/timer.hpp"

using namespace hetindex;
using namespace hetindex::bench;

namespace {

struct LatencyRow {
  double open_ms = 0;
  double hit_us = 0;
  double miss_us = 0;
  double range_us = 0;
  double prefix_us = 0;
};

LatencyRow measure(const InvertedIndex& index, const std::vector<std::string>& terms,
                   std::uint32_t max_doc) {
  LatencyRow row;
  std::mt19937 rng(42);
  std::uniform_int_distribution<std::size_t> pick(0, terms.size() - 1);
  constexpr int kIters = 4000;
  std::uint64_t sink = 0;

  WallTimer t;
  for (int i = 0; i < kIters; ++i) sink += index.lookup(terms[pick(rng)])->doc_ids.size();
  row.hit_us = t.seconds() / kIters * 1e6;

  t = WallTimer();
  for (int i = 0; i < kIters; ++i) {
    sink += index.lookup("zzz_not_a_term_" + std::to_string(i & 7)).has_value();
  }
  row.miss_us = t.seconds() / kIters * 1e6;

  t = WallTimer();
  for (int i = 0; i < kIters; ++i) {
    const std::uint32_t lo = static_cast<std::uint32_t>(rng() % (max_doc + 1));
    sink += index.lookup_range(terms[pick(rng)], lo, lo + max_doc / 8)->doc_ids.size();
  }
  row.range_us = t.seconds() / kIters * 1e6;

  t = WallTimer();
  for (int i = 0; i < kIters / 4; ++i) {
    sink += index.terms_with_prefix(terms[pick(rng)].substr(0, 3)).size();
  }
  row.prefix_us = t.seconds() / (kIters / 4) * 1e6;

  if (sink == 0xFFFFFFFFFFFFFFFFull) std::printf("impossible\n");
  return row;
}

}  // namespace

int main() {
  banner("Query latency: run-file backend vs mmapped segment",
         "read-path extension of the §III.F output layout (not a paper table)");

  CollectionSpec spec = wikipedia_like();
  spec.total_bytes = static_cast<std::uint64_t>(24.0 * (1 << 20) * scale());
  const auto coll = cached_collection(spec);

  const std::string index_dir = bench_dir() + "/query_latency_idx";
  std::filesystem::remove_all(index_dir);
  IndexBuilder builder;
  builder.parsers(2).cpu_indexers(2).gpus(1);
  const auto report = builder.build(coll.paths(), index_dir);
  const auto fold = compact_index(index_dir).value();
  std::printf("corpus: %s raw, %llu docs, %llu terms, %llu runs\n",
              format_bytes(report.uncompressed_bytes).c_str(),
              static_cast<unsigned long long>(report.documents),
              static_cast<unsigned long long>(report.terms),
              static_cast<unsigned long long>(fold.runs));
  std::printf("segment: %s (from %s of run blobs)\n\n",
              format_bytes(fold.output_bytes).c_str(),
              format_bytes(fold.input_bytes).c_str());

  // A query mix biased toward real terms, sampled across the dictionary.
  std::vector<std::string> terms;
  {
    const auto legacy = InvertedIndex::open(index_dir, {IndexBackend::kRuns}).value();
    std::size_t i = 0;
    legacy.for_each_term([&](std::string_view t) {
      if (i++ % 37 == 0) terms.emplace_back(t);
    });
  }
  const std::uint32_t max_doc = static_cast<std::uint32_t>(report.documents - 1);

  LatencyRow rows[2];
  const char* names[2] = {"run files", "segment"};
  for (int backend = 0; backend < 2; ++backend) {
    WallTimer open_timer;
    const auto index =
        InvertedIndex::open(index_dir, {backend == 0 ? IndexBackend::kRuns
                                                     : IndexBackend::kSegment})
            .value();
    rows[backend] = measure(index, terms, max_doc);
    rows[backend].open_ms = open_timer.seconds() * 1e3;  // includes warmup lookups
  }

  std::printf("%-12s %12s %10s %10s %10s %12s\n", "backend", "open+bench ms", "hit us",
              "miss us", "range us", "prefix us");
  row_sep();
  for (int backend = 0; backend < 2; ++backend) {
    const auto& r = rows[backend];
    std::printf("%-12s %12.1f %10.2f %10.2f %10.2f %12.2f\n", names[backend], r.open_ms,
                r.hit_us, r.miss_us, r.range_us, r.prefix_us);
  }
  std::printf("\nsegment file replaces %llu run files; identical query results "
              "(tested in tests/test_segment.cpp)\n",
              static_cast<unsigned long long>(fold.runs));
  return 0;
}
