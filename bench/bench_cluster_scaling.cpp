/// \file bench_cluster_scaling.cpp
/// Serving-cluster scaling sweep (docs/CLUSTER.md, not a paper table): QPS
/// and latency percentiles of the ShardRouter versus shard count, for each
/// partition strategy. The interesting comparison is the strategies' cost
/// shapes — document/block pay a stats probe plus full fan-out on every
/// ranked query, term partitioning pays central scoring but touches only
/// the query's owner shards. Writes BENCH_cluster.json (path overridable
/// via HETINDEX_BENCH_JSON) — scripts/tier1.sh archives it next to the
/// build tree.

#include <algorithm>
#include <random>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "obs/json.hpp"
#include "util/timer.hpp"

using namespace hetindex;
using namespace hetindex::bench;

namespace {

struct Row {
  PartitionStrategy strategy = PartitionStrategy::kDocument;
  std::uint32_t shards = 0;
  double ingest_docs_per_s = 0;
  double qps = 0;
  double p50_us = 0, p99_us = 0;
};

double pct(std::vector<double>& v, double q) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  return v[std::min(v.size() - 1, static_cast<std::size_t>(q * v.size()))] * 1e6;
}

}  // namespace

int main() {
  banner("Serving cluster: QPS / latency vs shard count per partitioner",
         "scatter-gather serving over the §III inverted files (not a paper table)");

  CollectionSpec spec = wikipedia_like();
  spec.total_bytes = static_cast<std::uint64_t>(4.0 * (1 << 20) * scale());
  const auto coll = cached_collection(spec);
  std::vector<Document> docs;
  for (const auto& path : coll.paths()) {
    for (auto& doc : container_read(path)) docs.push_back(std::move(doc));
  }
  std::printf("corpus: %zu docs, %.1f MB compressed\n\n", docs.size(),
              static_cast<double>(coll.total_compressed()) / (1 << 20));

  std::printf("%-10s %7s %14s %10s %12s %12s\n", "strategy", "shards",
              "ingest dps", "qps", "p50 us", "p99 us");
  row_sep(72);

  std::vector<Row> rows;
  bool ok = true;
  for (const auto strategy :
       {PartitionStrategy::kDocument, PartitionStrategy::kTerm,
        PartitionStrategy::kBlock}) {
    for (const std::uint32_t shards : {1u, 2u, 4u}) {
      const std::string dir = bench_dir() + "/cluster_" +
                              std::string(partition_strategy_name(strategy)) + "_" +
                              std::to_string(shards);
      std::filesystem::remove_all(dir);
      ClusterOptions copts;
      copts.strategy = strategy;
      copts.shards = shards;
      auto cluster = Cluster::open(dir, copts).value();

      const WallTimer ingest_timer;
      for (const auto& doc : docs) (void)cluster.add_document(doc.url, doc.body);
      if (auto flushed = cluster.flush(); !flushed) {
        std::printf("FAIL: flush: %s\n", flushed.error().to_string().c_str());
        return 1;
      }
      const double ingest_s = ingest_timer.seconds();

      // Query terms from shard 0's committed vocabulary (for document and
      // block partitioning a subset of the union vocabulary — fine: these
      // are representative query terms, not an exhaustive sweep).
      std::vector<std::string> vocab;
      cluster.shard(0).writer().snapshot()->for_each_term(
          [&vocab](std::string_view t) {
            vocab.emplace_back(t);
            return vocab.size() < 4096;
          });
      std::mt19937 rng(17);
      std::uniform_int_distribution<std::size_t> pick(0, vocab.size() - 1);
      std::vector<std::vector<std::string>> queries;
      for (std::size_t q = 0; q < 64; ++q) {
        std::vector<std::string> terms;
        for (std::size_t t = 0; t < 1 + q % 4; ++t) terms.push_back(vocab[pick(rng)]);
        queries.push_back(std::move(terms));
      }

      const auto router = cluster.make_router();
      std::vector<double> lat;
      const WallTimer serve_timer;
      for (int pass = 0; pass < 4; ++pass) {
        for (const auto& terms : queries) {
          QueryRequest request;
          request.query = Query::bag(terms);
          request.k = 10;
          request.use_result_cache = false;
          const WallTimer t;
          const auto response = router->search(request);
          if (response.has_value() && pass > 0) lat.push_back(t.seconds());
        }
      }
      const double serve_s = serve_timer.seconds();

      Row row;
      row.strategy = strategy;
      row.shards = shards;
      row.ingest_docs_per_s = static_cast<double>(docs.size()) / std::max(ingest_s, 1e-9);
      row.qps = static_cast<double>(lat.size()) / std::max(serve_s, 1e-9);
      row.p50_us = pct(lat, 0.50);
      row.p99_us = pct(lat, 0.99);
      std::printf("%-10s %7u %14.0f %10.0f %12.1f %12.1f\n",
                  partition_strategy_name(strategy), shards, row.ingest_docs_per_s,
                  row.qps, row.p50_us, row.p99_us);
      if (lat.empty() || row.qps <= 0) {
        std::printf("FAIL: no successful queries (%s, %u shards)\n",
                    partition_strategy_name(strategy), shards);
        ok = false;
      }
      rows.push_back(row);
      std::filesystem::remove_all(dir);
    }
  }

  // Machine-readable summary (consumed by CI trend tooling).
  std::string json = "{\n  \"bench\": \"cluster_scaling\",\n  \"rows\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& r = rows[i];
    json += std::string("    {\"strategy\": \"") + partition_strategy_name(r.strategy) +
            "\", \"shards\": " + std::to_string(r.shards) +
            ", \"ingest_docs_per_s\": " + obs::json_number(r.ingest_docs_per_s) +
            ", \"qps\": " + obs::json_number(r.qps) +
            ", \"p50_us\": " + obs::json_number(r.p50_us) +
            ", \"p99_us\": " + obs::json_number(r.p99_us) + "}";
    json += (i + 1 < rows.size()) ? ",\n" : "\n";
  }
  json += "  ]\n}\n";
  const char* out = std::getenv("HETINDEX_BENCH_JSON");
  const std::string json_path = out != nullptr ? out : "BENCH_cluster.json";
  write_file(json_path, std::vector<std::uint8_t>(json.begin(), json.end()));
  std::printf("\nwrote %s\n", json_path.c_str());
  return ok ? 0 : 1;
}
