/// \file bench_table5_workload_split.cpp
/// Reproduces Table V: "Work Load between CPU and GPU" under the best
/// configuration (2 CPU + 2 GPU indexers): token, term and character
/// counts processed by each side. Expected shape (paper): the GPU side
/// processes ~80% of the CPU's token count but ~2.5× the terms and ~2.2×
/// the characters — the Zipf-driven popularity split at work: few popular
/// collections hold most tokens, the long tail holds most distinct terms.

#include <cstdio>
#include <filesystem>

#include "bench_common.hpp"
#include "pipeline/engine.hpp"

using namespace hetindex;
using namespace hetindex::bench;

int main() {
  banner("Table V — Work load between CPU and GPU indexers",
         "Wei & JaJa 2011, Table V");

  auto spec = clueweb_like(scale());
  spec.total_bytes = static_cast<std::uint64_t>(32.0 * scale() * (1 << 20));
  spec.file_bytes = 2u << 20;
  const auto coll = cached_collection(spec);

  PipelineConfig pc;
  pc.parsers = 2;
  pc.cpu_indexers = 2;
  pc.gpus = 2;
  pc.output_dir = bench_dir() + "/table5_out";
  PipelineEngine engine(pc);
  const auto report = engine.build(coll.paths());
  std::filesystem::remove_all(pc.output_dir);

  const auto cpu = report.cpu_total();
  const auto gpu = report.gpu_total();
  std::printf("\n%-22s %18s %18s\n", "", "CPU Indexers", "GPU Indexers");
  row_sep(62);
  std::printf("%-22s %18llu %18llu\n", "Token Number",
              static_cast<unsigned long long>(cpu.tokens),
              static_cast<unsigned long long>(gpu.tokens));
  std::printf("%-22s %18llu %18llu\n", "Term Number",
              static_cast<unsigned long long>(cpu.new_terms),
              static_cast<unsigned long long>(gpu.new_terms));
  std::printf("%-22s %18llu %18llu\n", "Character Number",
              static_cast<unsigned long long>(cpu.chars),
              static_cast<unsigned long long>(gpu.chars));
  std::printf("%-22s %18llu %18llu\n", "Collections",
              static_cast<unsigned long long>(cpu.collections_touched),
              static_cast<unsigned long long>(gpu.collections_touched));

  const double token_ratio = static_cast<double>(gpu.tokens) / static_cast<double>(cpu.tokens);
  const double term_ratio =
      static_cast<double>(gpu.new_terms) / static_cast<double>(cpu.new_terms);
  const double char_ratio = static_cast<double>(gpu.chars) / static_cast<double>(cpu.chars);
  std::printf("\nGPU/CPU ratios (paper): tokens %.2f (0.80 — wait, GPU ≈ 80%% more docs*),\n",
              token_ratio);
  std::printf("terms %.2f (2.50), chars %.2f (2.16)\n", term_ratio, char_ratio);
  std::printf("* paper: \"GPU indexers process almost 80%% the number of tokens compared\n"
              "  to those processed by the CPU\" → ratio ≈ 0.8–1.3 depending on the split.\n");
  std::printf("\nShape checks: GPU sees far more distinct terms than CPU: %s;\n"
              "GPU token share is comparable to CPU's (not a tiny tail): %s;\n"
              "popular-on-CPU means CPU tokens-per-term >> GPU's: %s\n",
              term_ratio > 1.5 ? "PASS" : "MISS",
              (token_ratio > 0.4 && token_ratio < 2.5) ? "PASS" : "MISS",
              (static_cast<double>(cpu.tokens) / cpu.new_terms) >
                      3.0 * (static_cast<double>(gpu.tokens) / gpu.new_terms)
                  ? "PASS"
                  : "MISS");
  return 0;
}
