/// \file bench_ablation_regroup.cpp
/// Ablation of the parser's Step 5 (regrouping by trie index), §III.C:
///  (a) "the overhead of this regrouping step is relatively small, about
///      5% of the total running time of the whole parser";
///  (b) "even in the case when indexing is carried out by a serial CPU
///      thread, regrouping results in approximately 15-fold speedup"
///      (cache locality: consecutive inserts hit the same small B-tree).
/// The measured speedup on this host depends on its cache hierarchy; the
/// check is that regrouping wins clearly, not the exact 15×.

#include <cstdio>

#include "baseline/baselines.hpp"
#include "bench_common.hpp"
#include "corpus/container.hpp"
#include "parse/parser.hpp"
#include "util/timer.hpp"

using namespace hetindex;
using namespace hetindex::bench;

int main() {
  banner("Ablation — Step 5 regrouping (overhead and serial-indexing speedup)",
         "Wei & JaJa 2011, §III.C");

  auto spec = clueweb_like(scale());
  spec.total_bytes = static_cast<std::uint64_t>(32.0 * scale() * (1 << 20));
  spec.file_bytes = 2u << 20;
  const auto coll = cached_collection(spec);

  // (a) Regrouping overhead within the whole parser (Fig. 3: Step 1 read +
  // decompress through Step 5 regroup — the paper's ~5% is of this total).
  ParseTimes times;
  double step1_seconds = 0;
  Parser parser;
  for (const auto& file : coll.paths()) {
    WallTimer t;
    const auto docs = container_read(file);  // read + decompress + doc ids
    step1_seconds += t.seconds();
    parser.parse(docs, 0, 0, 0, &times);
  }
  const double whole_parser = step1_seconds + times.total();
  const double regroup_pct = times.regroup / whole_parser * 100.0;
  std::printf("\nParser step breakdown over %s:\n",
              format_bytes(coll.total_uncompressed()).c_str());
  std::printf("  read+decompress:%7.3f s\n  tokenize+strip: %7.3f s\n"
              "  stem:           %7.3f s\n"
              "  stop words:     %7.3f s\n  regroup:        %7.3f s  (%.1f%% of parser)\n",
              step1_seconds, times.tokenize, times.stem, times.stopword, times.regroup,
              regroup_pct);

  // (b) Serial indexing with vs without regrouped input.
  const auto grouped = serial_trie_index(coll.paths(), /*regrouped=*/true);
  const auto ungrouped = serial_trie_index(coll.paths(), /*regrouped=*/false);
  const double speedup = ungrouped.index_seconds / grouped.index_seconds;
  std::printf("\nSerial indexing over the same parsed stream:\n");
  std::printf("  regrouped (Step 5 on):   %8.3f s\n", grouped.index_seconds);
  std::printf("  stream order (Step 5 off):%7.3f s\n", ungrouped.index_seconds);
  std::printf("  speedup from regrouping: %8.2fx  (paper: ~15x on ClueWeb-scale\n"
              "  dictionaries; the gap grows with dictionary size vs cache size)\n",
              speedup);
  std::printf("  terms agree: %s (%llu)\n",
              grouped.terms() == ungrouped.terms() ? "yes" : "NO",
              static_cast<unsigned long long>(grouped.terms()));

  std::printf("\nShape checks: regroup overhead a small fraction of the parser (<20%%;\n"
              "the paper reports ~5%% — its per-MB parse cost on real web documents is\n"
              "several times ours on synthetic text, diluting the share): %s;\n"
              "regrouped indexing faster: %s\n",
              regroup_pct < 20.0 ? "PASS" : "MISS", speedup > 1.15 ? "PASS" : "MISS");
  return 0;
}
