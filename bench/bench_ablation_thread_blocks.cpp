/// \file bench_ablation_thread_blocks.cpp
/// Ablation of the GPU thread-block count (§IV.B): "After extensive
/// testing ... the best performance is achieved by using 480 thread
/// blocks per GPU" (with 32 threads per block to match the 31-key node).
/// This bench sweeps the block count for the warp-per-collection indexing
/// kernel over one parsed block of a ClueWeb-like corpus and reports the
/// simulated kernel time and SM load imbalance.

#include <cstdio>

#include "bench_common.hpp"
#include "corpus/container.hpp"
#include "index/indexer.hpp"
#include "parse/parser.hpp"

using namespace hetindex;
using namespace hetindex::bench;

int main() {
  banner("Ablation — GPU thread blocks per kernel", "Wei & JaJa 2011, §IV.B (480 blocks)");

  auto spec = clueweb_like(scale());
  spec.total_bytes = static_cast<std::uint64_t>(8.0 * scale() * (1 << 20));
  spec.file_bytes = 8u << 20;
  const auto coll = cached_collection(spec);
  const auto docs = container_read(coll.files.front().path);
  Parser parser;
  const auto block = parser.parse(docs, 0, 0, 0);
  std::vector<std::uint32_t> all;
  for (const auto& g : block.groups) all.push_back(g.trie_idx);
  std::printf("One parsed block: %llu tokens across %zu collections\n",
              static_cast<unsigned long long>(block.tokens), all.size());

  std::printf("\n%-14s %14s %16s %14s\n", "ThreadBlocks", "KernelTime(s)", "vs 480 blocks",
              "Imbalance");
  row_sep(64);
  double t480 = 0;
  std::vector<std::pair<std::uint32_t, double>> sweep;
  for (const std::uint32_t blocks : {30u, 60u, 120u, 240u, 480u, 960u, 1920u}) {
    DictionaryShard shard;
    PostingsStore store;
    GpuIndexer gpu(shard, store, all, GpuSpec{}, blocks);
    GpuIndexer::Timing timing;
    gpu.index_block(block, &timing);
    if (blocks == 480) t480 = timing.index_seconds;
    sweep.emplace_back(blocks, timing.index_seconds);
    std::printf("%-14u %14.4f %16s %14.2f\n", blocks, timing.index_seconds, "",
                timing.kernel.load_imbalance);
  }
  std::printf("\nRelative to 480 blocks:\n");
  for (const auto& [blocks, secs] : sweep)
    std::printf("  %5u blocks: %.2fx\n", blocks, secs / t480);

  const bool few_blocks_slow = sweep.front().second > t480 * 1.3;
  const bool saturates = sweep.back().second > t480 * 0.8;
  std::printf("\nShape checks: too few blocks underuse the 30 SMs: %s; gains saturate\n"
              "near 480 blocks (more adds little): %s\n",
              few_blocks_slow ? "PASS" : "MISS", saturates ? "PASS" : "MISS");
  std::printf("Paper: 480 blocks/GPU optimal on the C1060 (16 blocks per SM keeps\n"
              "warps resident to hide device-memory latency without starving any SM).\n");
  return 0;
}
