/// \file bench_table6_collections.cpp
/// Reproduces Table VI: "Performance Comparison on Different Document
/// Collections" — sampling, parallel-parser and parallel-indexer times,
/// dictionary combine/write, total time and throughput for: ClueWeb-like
/// (2 CPU + 2 GPU), ClueWeb-like without GPUs, Wikipedia-like and
/// Congress-like (best config each). Stage wall times come from the DES
/// on the paper platform (6 parsers). Expected shape: ClueWeb with GPUs
/// beats ClueWeb without GPUs by ~25-30%; parser and indexer stage times
/// are closely matched (the pipeline is rate-balanced); dictionary phases
/// are negligible.

#include <cstdio>
#include <filesystem>

#include "bench_common.hpp"
#include "pipeline/engine.hpp"
#include "sim/pipeline_sim.hpp"

using namespace hetindex;
using namespace hetindex::bench;

int main() {
  banner("Table VI — Performance on different document collections",
         "Wei & JaJa 2011, Table VI (DES on measured stage costs)");

  struct Column {
    const char* label;
    CollectionSpec spec;
    std::size_t gpus;
  };
  const double s = scale();
  std::vector<Column> columns = {
      {"ClueWeb", clueweb_like(s), 2},
      {"ClueWeb w/o GPU", clueweb_like(s), 0},
      {"Wikipedia", wikipedia_like(s), 2},
      {"Congress", congress_like(s), 2},
  };

  struct Result {
    double sampling, parsers, indexers, combine, write, total, throughput;
  };
  std::vector<Result> results;
  PipelineSimulator sim;

  for (const auto& col : columns) {
    const auto coll = cached_collection(col.spec);
    PipelineConfig pc;
    pc.parsers = 2;
    pc.cpu_indexers = 2;
    pc.gpus = col.gpus;
    const auto report = measured_report(coll, pc);  // best-of-2 stage costs

    SimPipelineConfig sc;
    sc.parsers = 6;
    sc.cpu_indexers = 2;
    sc.gpus = col.gpus;
    const auto des = sim.simulate(report.runs, sc);

    Result r;
    r.sampling = report.sampling_seconds;
    r.parsers = des.parse_stage_seconds;
    r.indexers = des.index_stage_seconds;
    r.combine = report.dict_combine_seconds;
    r.write = report.dict_write_seconds;
    r.total = r.sampling + std::max(r.parsers, r.indexers) + r.combine + r.write;
    r.throughput =
        static_cast<double>(report.uncompressed_bytes) / (1024.0 * 1024.0) / r.total;
    results.push_back(r);
  }

  std::printf("\n%-24s", "Time (s)");
  for (const auto& col : columns) std::printf(" %16s", col.label);
  std::printf("\n");
  row_sep(92);
  auto row = [&](const char* label, auto getter, const char* fmt = " %16.3f") {
    std::printf("%-24s", label);
    for (const auto& r : results) std::printf(fmt, getter(r));
    std::printf("\n");
  };
  row("Sampling", [](const Result& r) { return r.sampling; });
  row("Parallel Parsers", [](const Result& r) { return r.parsers; });
  row("Parallel Indexers", [](const Result& r) { return r.indexers; });
  row("Dictionary Combine", [](const Result& r) { return r.combine; });
  row("Dictionary Write", [](const Result& r) { return r.write; });
  row("Total Time", [](const Result& r) { return r.total; });
  row("Throughput (MB/s)", [](const Result& r) { return r.throughput; }, " %16.2f");

  std::printf("\nPaper (full-scale): ClueWeb 262.76 MB/s, ClueWeb w/o GPU 204.32 MB/s,\n"
              "Wikipedia 78.29 MB/s, Congress 208.06 MB/s.\n");
  const double gpu_gain = results[1].indexers / results[0].indexers;
  std::printf("\nShape checks: GPU acceleration of the indexer stage on ClueWeb: %.2fx\n"
              "(paper 1.30x on total indexer time; our corpus is ~1000x smaller so the\n"
              "stage is less indexing-bound): %s;\n"
              "parser and indexer stages rate-matched on ClueWeb (within 2x; the paper\n"
              "tunes the worker split to equalize them on its own hardware): %s;\n"
              "dictionary phases small (<15%% of total; ours also fold in the doc-map\n"
              "write, and the paper's corpus:dictionary ratio is ~1000x larger): %s\n",
              gpu_gain, gpu_gain > 1.03 ? "PASS" : "MISS",
              std::abs(results[0].parsers - results[0].indexers) <
                      0.5 * std::max(results[0].parsers, results[0].indexers)
                  ? "PASS"
                  : "MISS",
              (results[0].combine + results[0].write) < 0.15 * results[0].total ? "PASS"
                                                                                : "MISS");
  return 0;
}
