/// \file bench_ablation_trie_height.cpp
/// Ablation of the trie height (§III.B.1): "The height of three for the
/// trie seems to work best since a smaller height will lead to a wide
/// variety of trie collections, some very large and some very small ...
/// A larger value for the trie height will generate many small trie
/// collections, which will be again hard to manage."
/// For heights 1–4 this bench groups a realistic token stream by the
/// generalized prefix, builds per-collection B-trees, and reports: number
/// of collections, the largest collection's token share (the load-balance
/// bound for one warp/thread), per-collection size dispersion, serial
/// insert time, and memory overhead of the trees.

#include <cstdio>
#include <unordered_map>
#include <vector>

#include "bench_common.hpp"
#include "dict/btree.hpp"
#include "text/tokenizer.hpp"
#include "util/timer.hpp"
#include "util/zipf.hpp"

using namespace hetindex;
using namespace hetindex::bench;

namespace {

/// Generalized trie key of height h: the first min(h, len) characters.
std::string prefix_key(const std::string& term, std::size_t h) {
  return term.substr(0, std::min(h, term.size()));
}

}  // namespace

int main() {
  banner("Ablation — trie height (1, 2, 3, 4)", "Wei & JaJa 2011, §III.B.1");

  const Vocabulary vocab(150000, 0.03, 0.01, 99);
  ZipfSampler zipf(vocab.size(), 1.0);
  Rng rng(8);
  std::vector<std::string> stream;
  stream.reserve(1500000);
  for (int i = 0; i < 1500000; ++i) stream.push_back(vocab.word(zipf(rng)));

  std::printf("\n%-8s %12s %14s %14s %12s %14s\n", "Height", "Collections",
              "MaxShare(%)", "Top8Share(%)", "Insert(s)", "TreeMem");
  row_sep(80);

  std::vector<double> max_share, insert_secs;
  std::vector<std::size_t> coll_counts;
  for (std::size_t h = 1; h <= 4; ++h) {
    std::unordered_map<std::string, std::uint64_t> collection_tokens;
    for (const auto& term : stream) ++collection_tokens[prefix_key(term, h)];
    std::vector<std::uint64_t> sizes;
    sizes.reserve(collection_tokens.size());
    for (const auto& [key, n] : collection_tokens) sizes.push_back(n);
    std::sort(sizes.rbegin(), sizes.rend());
    const double total = static_cast<double>(stream.size());
    double top8 = 0;
    for (std::size_t i = 0; i < std::min<std::size_t>(8, sizes.size()); ++i)
      top8 += static_cast<double>(sizes[i]);

    // Serial insert into per-collection trees with h-prefix stripping.
    Arena arena;
    std::unordered_map<std::string, std::unique_ptr<BTree>> trees;
    WallTimer t;
    for (const auto& term : stream) {
      const std::string key = prefix_key(term, h);
      auto& tree = trees[key];
      if (!tree) tree = std::make_unique<BTree>(arena);
      tree->find_or_insert(term.size() > key.size()
                               ? std::string_view(term).substr(key.size())
                               : std::string_view());
    }
    const double secs = t.seconds();

    coll_counts.push_back(collection_tokens.size());
    max_share.push_back(static_cast<double>(sizes[0]) / total * 100.0);
    insert_secs.push_back(secs);
    std::printf("%-8zu %12zu %14.2f %14.2f %12.3f %14s\n", h, collection_tokens.size(),
                max_share.back(), top8 / total * 100.0, secs,
                format_bytes(arena.reserved_bytes()).c_str());
  }

  // Shape checks mirroring the paper's argument.
  const bool h1_imbalanced = max_share[0] > 2.5 * max_share[2];
  const bool h4_fragmented = coll_counts[3] > 3 * coll_counts[2];
  const bool h3_reasonable = insert_secs[2] <= insert_secs[0] * 1.15;
  std::printf("\nShape checks: height 1 has a far heavier largest collection than\n"
              "height 3 (load imbalance): %s; height 4 fragments into many more\n"
              "collections (management overhead): %s; height-3 insert time is\n"
              "competitive with the best: %s\n",
              h1_imbalanced ? "PASS" : "MISS", h4_fragmented ? "PASS" : "MISS",
              h3_reasonable ? "PASS" : "MISS");
  std::printf("Paper: height 3 balances collection granularity (17,613 buckets)\n"
              "against fragmentation; it also strips 3 of ~6.6 chars per term.\n");
  return 0;
}
