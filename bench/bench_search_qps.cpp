/// \file bench_search_qps.cpp
/// Serving throughput of the Searcher/SearchService stack (docs/SERVING.md,
/// not a paper table): QPS and latency percentiles versus executor thread
/// count, cold-versus-warm result cache at two cache sizes, the MaxScore
/// executor against the exhaustive baseline, and a mixed-class workload
/// (ranked/AND/phrase/NEAR at fixed ratios) with per-class percentiles.
/// Writes the per-class summary to BENCH_search.json (path overridable via
/// HETINDEX_BENCH_JSON) — scripts/tier1.sh archives it next to the build
/// tree.
///
/// Thread-scaling rows bypass the result cache so every request pays the
/// full lookup+score cost — otherwise the second pass would measure the
/// cache, not the executor.

#include <algorithm>
#include <future>
#include <random>
#include <thread>

#include "bench_common.hpp"
#include "obs/json.hpp"
#include "util/timer.hpp"

using namespace hetindex;
using namespace hetindex::bench;

namespace {

struct Workload {
  std::vector<std::vector<std::string>> queries;
};

Workload make_workload(const InvertedIndex& index, std::size_t count) {
  std::vector<std::string> vocab;
  std::size_t i = 0;
  index.for_each_term([&](std::string_view t) {
    if (i++ % 23 == 0) vocab.emplace_back(t);
  });
  // Heavier-than-interactive queries (many terms, deep k below) so worker
  // execution, not client-side submission, is what the sweep measures.
  std::mt19937 rng(7);
  std::uniform_int_distribution<std::size_t> pick(0, vocab.size() - 1);
  std::uniform_int_distribution<std::size_t> arity(4, 8);
  Workload w;
  w.queries.reserve(count);
  for (std::size_t q = 0; q < count; ++q) {
    std::vector<std::string> terms;
    for (std::size_t t = arity(rng); t > 0; --t) terms.push_back(vocab[pick(rng)]);
    w.queries.push_back(std::move(terms));
  }
  return w;
}

struct RunResult {
  double qps = 0;
  double p50_us = 0, p95_us = 0, p99_us = 0;
  std::uint64_t answered = 0;
};

/// One timed sweep of the workload through a service: `passes` rounds,
/// futures drained in queue-sized windows like a real client would.
RunResult run_workload(SearchService& service, const Workload& workload,
                       std::size_t passes, bool use_result_cache) {
  std::vector<double> latencies;
  latencies.reserve(workload.queries.size() * passes);
  RunResult result;
  std::vector<std::future<Expected<QueryResponse>>> inflight;
  const auto drain = [&] {
    for (auto& fut : inflight) {
      auto r = fut.get();
      if (!r.has_value()) continue;  // shed: counted via metrics below
      ++result.answered;
      latencies.push_back(r.value().timings.total_seconds);
    }
    inflight.clear();
  };
  const WallTimer timer;
  for (std::size_t pass = 0; pass < passes; ++pass) {
    for (const auto& terms : workload.queries) {
      QueryRequest request;
      request.query = Query::bag(terms);
      request.k = 100;
      request.use_result_cache = use_result_cache;
      inflight.push_back(service.submit(std::move(request)));
      if (inflight.size() >= service.queue_capacity() / 2) drain();
    }
  }
  drain();
  const double wall = timer.seconds();
  result.qps = result.answered / std::max(wall, 1e-9);
  std::sort(latencies.begin(), latencies.end());
  const auto pct = [&](double q) {
    if (latencies.empty()) return 0.0;
    return latencies[std::min(latencies.size() - 1,
                              static_cast<std::size_t>(q * latencies.size()))] *
           1e6;
  };
  result.p50_us = pct(0.50);
  result.p95_us = pct(0.95);
  result.p99_us = pct(0.99);
  return result;
}

}  // namespace

int main() {
  banner("Search serving: QPS and latency under the SearchService pool",
         "serving extension over the §III inverted files (not a paper table)");

  CollectionSpec spec = wikipedia_like();
  spec.total_bytes = static_cast<std::uint64_t>(24.0 * (1 << 20) * scale());
  const auto coll = cached_collection(spec);

  const std::string index_dir = bench_dir() + "/search_qps_idx";
  std::filesystem::remove_all(index_dir);
  IndexBuilder builder;
  builder.parsers(2).cpu_indexers(2).emit_segment(true);
  // The mixed-class section issues phrase/NEAR queries, which need the
  // positional payload; ranked/AND rows are unaffected by carrying it.
  builder.config().parser.record_positions = true;
  const auto report = builder.build(coll.paths(), index_dir);
  const auto index = InvertedIndex::open(index_dir, {}).value();
  const auto docs = DocMap::open(doc_map_path(index_dir));
  std::printf("corpus: %llu docs, %llu terms; score bounds: %s; %u hardware "
              "threads (thread rows flatten when the pool exceeds them)\n\n",
              static_cast<unsigned long long>(report.documents),
              static_cast<unsigned long long>(report.terms),
              index.has_score_bounds() ? "sidecar" : "loose",
              std::thread::hardware_concurrency());

  const auto workload = make_workload(index, 256);
  SearchServiceOptions service_opts;
  service_opts.queue_capacity = 1024;  // benching executors, not admission

  // ---- QPS vs executor threads (result cache bypassed). ----
  std::printf("%-10s %10s %10s %10s %10s\n", "threads", "QPS", "p50 us", "p95 us",
              "p99 us");
  row_sep(54);
  double qps_1 = 0;
  for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
    auto searcher = Searcher::open(SearchSource::batch(index, docs)).value();
    service_opts.threads = threads;
    SearchService service(searcher, service_opts);
    const auto r = run_workload(service, workload, 4, /*use_result_cache=*/false);
    if (threads == 1) qps_1 = r.qps;
    std::printf("%-10zu %10.0f %10.1f %10.1f %10.1f\n", threads, r.qps, r.p50_us,
                r.p95_us, r.p99_us);
  }

  // ---- Cold vs warm result cache, small and ample capacity. ----
  std::printf("\n%-14s %12s %12s %10s %10s\n", "result cache", "cold QPS",
              "warm QPS", "speedup", "hit rate");
  row_sep(64);
  double warm_speedup = 0;
  for (const std::size_t entries : {64u, 4096u}) {
    SearcherOptions searcher_opts;
    searcher_opts.result_cache_entries = entries;
    auto searcher =
        Searcher::open(SearchSource::batch(index, docs), searcher_opts).value();
    service_opts.threads = 4;
    SearchService service(searcher, service_opts);
    const auto cold = run_workload(service, workload, 1, true);
    const auto before = service.metrics().snapshot();
    const auto warm = run_workload(service, workload, 2, true);
    const auto after = service.metrics().snapshot();
    const double hits =
        static_cast<double>(after.counter("search_result_cache_hits_total") -
                            before.counter("search_result_cache_hits_total"));
    const double rate = hits / std::max<double>(1.0, static_cast<double>(warm.answered));
    if (entries == 4096u) warm_speedup = warm.qps / std::max(cold.qps, 1e-9);
    std::printf("%-14zu %12.0f %12.0f %9.1fx %9.0f%%\n", entries, cold.qps, warm.qps,
                warm.qps / std::max(cold.qps, 1e-9), rate * 100.0);
  }

  // ---- MaxScore early termination vs the exhaustive baseline. ----
  std::printf("\n%-12s %10s %10s %10s\n", "executor", "QPS", "p50 us", "p99 us");
  row_sep(46);
  for (const bool exhaustive : {true, false}) {
    auto searcher = Searcher::open(SearchSource::batch(index, docs)).value();
    service_opts.threads = 1;
    SearchService service(searcher, service_opts);
    std::vector<double> latencies;
    std::uint64_t answered = 0;
    const WallTimer timer;
    for (int pass = 0; pass < 4; ++pass) {
      for (const auto& terms : workload.queries) {
        QueryRequest request;
        request.query = Query::bag(terms);
        request.k = 10;
        request.exhaustive = exhaustive;
        request.use_result_cache = false;
        const auto r = service.search(std::move(request));
        if (!r.has_value()) continue;
        ++answered;
        latencies.push_back(r.value().timings.total_seconds);
      }
    }
    const double wall = timer.seconds();
    std::sort(latencies.begin(), latencies.end());
    const auto pct = [&](double q) {
      return latencies.empty()
                 ? 0.0
                 : latencies[std::min(latencies.size() - 1,
                                      static_cast<std::size_t>(q * latencies.size()))] *
                       1e6;
    };
    std::printf("%-12s %10.0f %10.1f %10.1f\n", exhaustive ? "exhaustive" : "maxscore",
                answered / std::max(wall, 1e-9), pct(0.50), pct(0.99));
  }

  // ---- Mixed query classes: ranked / AND / phrase / NEAR at fixed ratios. ----
  // Operands come from the highest-df stems so the document-level
  // intersections the positional verifier runs behind are non-trivial.
  // Per-class percentiles mirror what the serve verb reports in production;
  // the JSON below archives them for trend tooling.
  std::vector<std::string> frequent;
  index.for_each_term([&frequent](std::string_view t) { frequent.emplace_back(t); });
  std::sort(frequent.begin(), frequent.end(),
            [&index](const auto& a, const auto& b) {
              const auto pa = index.lookup(a), pb = index.lookup(b);
              return (pa ? pa->doc_ids.size() : 0) > (pb ? pb->doc_ids.size() : 0);
            });
  if (frequent.size() > 256) frequent.resize(256);
  std::mt19937 mixed_rng(29);
  std::uniform_int_distribution<std::size_t> pick_frequent(0, frequent.size() - 1);
  const auto draw = [&](std::size_t n) {
    std::vector<std::string> terms;
    for (std::size_t t = 0; t < n; ++t) terms.push_back(frequent[pick_frequent(mixed_rng)]);
    return terms;
  };
  // Fixed ratios per 20 queries: 8 ranked, 5 AND, 4 phrase, 3 NEAR/3.
  std::vector<Query> mixed;
  for (std::size_t q = 0; q < 240; ++q) {
    switch (q % 20) {
      case 0: case 1: case 2: case 3: case 4: case 5: case 6: case 7:
        mixed.push_back(Query::bag(draw(3 + q % 3)));
        break;
      case 8: case 9: case 10: case 11: case 12:
        mixed.push_back(Query::conjunction(draw(2 + q % 2)));
        break;
      case 13: case 14: case 15: case 16:
        mixed.push_back(Query::phrase(draw(2)));
        break;
      default:
        mixed.push_back(Query::near(draw(2), 3));
        break;
    }
  }

  struct ClassRow {
    std::vector<double> lat;
  };
  constexpr std::size_t kClasses = 5;
  ClassRow classes[kClasses];
  std::uint64_t mixed_answered = 0;
  const WallTimer mixed_timer;
  {
    auto searcher = Searcher::open(SearchSource::batch(index, docs)).value();
    service_opts.threads = 4;
    SearchService service(searcher, service_opts);
    for (int pass = 0; pass < 3; ++pass) {
      for (const auto& query : mixed) {
        QueryRequest request;
        request.query = query;
        request.k = 10;
        request.use_result_cache = false;
        const auto r = service.search(std::move(request));
        if (!r.has_value()) continue;
        ++mixed_answered;
        const auto cls = static_cast<std::size_t>(r.value().query_class());
        if (cls < kClasses) classes[cls].lat.push_back(r.value().timings.total_seconds);
      }
    }
  }
  const double mixed_wall = mixed_timer.seconds();
  std::printf("\nmixed workload (8:5:4:3 ranked:AND:phrase:NEAR per 20): %llu "
              "answered, %.0f QPS overall\n",
              static_cast<unsigned long long>(mixed_answered),
              mixed_answered / std::max(mixed_wall, 1e-9));
  std::printf("%-12s %8s %10s %10s\n", "class", "queries", "p50 us", "p99 us");
  row_sep(44);
  std::string json = "{\n  \"bench\": \"search_qps\",\n  \"mixed_classes\": [\n";
  bool first_row = true;
  for (std::size_t c = 0; c < kClasses; ++c) {
    auto& lat = classes[c].lat;
    if (lat.empty()) continue;
    std::sort(lat.begin(), lat.end());
    const auto pc = [&](double q) {
      return lat[std::min(lat.size() - 1, static_cast<std::size_t>(q * lat.size()))] * 1e6;
    };
    const char* name = query_class_name(static_cast<QueryClass>(c));
    std::printf("%-12s %8zu %10.1f %10.1f\n", name, lat.size(), pc(0.50), pc(0.99));
    if (!first_row) json += ",\n";
    first_row = false;
    json += "    {\"class\": \"" + std::string(name) +
            "\", \"count\": " + std::to_string(lat.size()) +
            ", \"p50_us\": " + obs::json_number(pc(0.50)) +
            ", \"p99_us\": " + obs::json_number(pc(0.99)) + "}";
  }
  json += "\n  ]\n}\n";
  const char* out = std::getenv("HETINDEX_BENCH_JSON");
  const std::string json_path = out != nullptr ? out : "BENCH_search.json";
  write_file(json_path, std::vector<std::uint8_t>(json.begin(), json.end()));
  std::printf("\nwrote %s\n", json_path.c_str());

  // Degenerate-measurement guard: the workload issues ranked, AND, phrase
  // and NEAR queries, so an empty bucket for any of them means one whole
  // class silently failed (e.g. a non-positional index erroring phrases).
  for (const QueryClass required :
       {QueryClass::kRanked, QueryClass::kConjunctive, QueryClass::kPhrase,
        QueryClass::kProximity}) {
    if (classes[static_cast<std::size_t>(required)].lat.empty()) {
      std::printf("FAIL: mixed-class workload answered no %s queries\n",
                  query_class_name(required));
      return 1;
    }
  }

  std::printf("\nsingle-thread QPS %.0f; identical rankings across executors is "
              "enforced by tests/test_search_service.cpp; warm-cache speedup %.1fx\n",
              qps_1, warm_speedup);
  return 0;
}
