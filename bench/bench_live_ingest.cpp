/// \file bench_live_ingest.cpp
/// Live-indexing cost model: what does incremental ingestion through
/// IndexWriter cost relative to the one-shot batch pipeline on the same
/// corpus? The paper builds inverted files in bulk; this harness measures
/// the price of giving up bulk construction for freshness — per-document
/// ingest throughput across flush thresholds, flush/compaction counts, the
/// write amplification of the tiered merge policy (bytes rewritten by
/// merges vs bytes flushed), and snapshot query latency against segment
/// counts before and after compaction.

#include <cstdio>
#include <filesystem>
#include <vector>

#include "bench_common.hpp"

using namespace hetindex;
using namespace hetindex::bench;

namespace {

std::uint64_t counter_value(const obs::MetricsRegistry& metrics, const char* name) {
  for (const auto& c : metrics.snapshot().counters) {
    if (c.name == name) return c.value;
  }
  return 0;
}

double query_micros(const LiveSnapshot& snap, const std::vector<std::string>& terms) {
  WallTimer timer;
  std::size_t hits = 0;
  for (const auto& term : terms) {
    if (snap.lookup(term)) ++hits;
  }
  return terms.empty() ? 0.0 : timer.seconds() * 1e6 / static_cast<double>(terms.size());
}

}  // namespace

int main() {
  banner("Live ingestion — incremental IndexWriter vs one-shot batch build",
         "docs/LIVE_INDEXING.md (extension beyond Wei & JaJa 2011)");

  auto spec = wikipedia_like();
  spec.total_bytes = static_cast<std::uint64_t>(8.0 * scale() * (1 << 20));
  const auto coll = cached_collection(spec);
  std::vector<Document> docs;
  std::uint64_t raw_bytes = 0;
  for (const auto& file : coll.paths()) {
    for (auto& doc : container_read(file)) {
      raw_bytes += doc.body.size();
      docs.push_back(std::move(doc));
    }
  }

  // Batch reference: the paper's pipeline, straight to a serving segment.
  const std::string batch_dir = bench_dir() + "/live_batch";
  std::filesystem::remove_all(batch_dir);
  IndexBuilder builder;
  builder.emit_segment(true);
  const auto batch_report = builder.build(coll.paths(), batch_dir);
  std::printf("\nCorpus: %zu docs, %s raw text\n", docs.size(),
              format_bytes(raw_bytes).c_str());
  std::printf("Batch build: %.2f s (%.1f MB/s), one segment\n",
              batch_report.total_seconds, batch_report.throughput_mb_s());

  // A fixed probe set for snapshot query latency: every 97th term.
  std::vector<std::string> probes;
  {
    const auto batch = InvertedIndex::open(batch_dir, {IndexBackend::kSegment}).value();
    std::size_t i = 0;
    batch.for_each_term([&](std::string_view term) {
      if (i++ % 97 == 0) probes.emplace_back(term);
    });
  }

  std::printf("\n%-12s %10s %8s %8s %10s %8s %10s %10s\n", "flush", "docs/s",
              "flushes", "merges", "write-amp", "segs", "q-us/term", "q-us/cpct");
  row_sep(84);
  for (const std::uint64_t flush_kb : {64ull, 256ull, 1024ull}) {
    const std::string dir = bench_dir() + "/live_ingest_" + std::to_string(flush_kb);
    std::filesystem::remove_all(dir);
    IndexWriterOptions opts;
    opts.flush_threshold_bytes = flush_kb << 10;
    auto w = IndexWriter::open(dir, opts).value();
    WallTimer timer;
    for (const auto& doc : docs) w.add_document(doc.url, doc.body);
    w.flush();
    const double ingest_seconds = timer.seconds();
    const double before_us = query_micros(*w.snapshot(), probes);
    w.compact_now();
    const auto snap = w.snapshot();
    const double after_us = query_micros(*snap, probes);

    // Write amplification of the tiered merge policy: every byte a merge
    // rewrites comes on top of the bytes flushes wrote once (1.0 == no
    // merge ever ran).
    const std::uint64_t flushes = counter_value(w.metrics(), "live_flushes_total");
    const std::uint64_t merges = counter_value(w.metrics(), "compactions_total");
    const std::uint64_t flushed = counter_value(w.metrics(), "live_flushed_bytes_total");
    const std::uint64_t merged = counter_value(w.metrics(), "compaction_bytes_written_total");
    const double write_amp =
        flushed == 0 ? 1.0 : static_cast<double>(flushed + merged) / flushed;

    std::printf("%9llu KB %10.0f %8llu %8llu %10.2f %8zu %10.1f %10.1f\n",
                static_cast<unsigned long long>(flush_kb),
                static_cast<double>(docs.size()) / ingest_seconds,
                static_cast<unsigned long long>(flushes),
                static_cast<unsigned long long>(merges), write_amp,
                snap->segment_count(), before_us, after_us);
  }

  std::printf("\nIngest throughput rises with the flush threshold (fewer, larger\n"
              "segments to write); query latency falls after compaction as the\n"
              "per-term lookup touches fewer segments.\n");
  return 0;
}
