/// \file bench_live_ingest.cpp
/// Live-indexing cost model: what does incremental ingestion through
/// IndexWriter cost relative to the one-shot batch pipeline on the same
/// corpus? The paper builds inverted files in bulk; this harness measures
/// the price of giving up bulk construction for freshness — per-document
/// ingest throughput across flush thresholds, flush/compaction counts, the
/// write amplification of the tiered merge policy (bytes rewritten by
/// merges vs bytes flushed), and snapshot query latency against segment
/// counts before and after compaction.
///
/// The second half measures the real-time mutable index: ingest docs/s
/// with and without concurrent memtable search load (reader threads
/// running ranked queries through a snapshot-following Searcher while the
/// writer ingests). Writes a machine-readable summary to BENCH_ingest.json
/// (path overridable via HETINDEX_BENCH_JSON) — scripts/tier1.sh archives
/// it next to the build tree.

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <random>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "obs/json.hpp"

using namespace hetindex;
using namespace hetindex::bench;

namespace {

std::uint64_t counter_value(const obs::MetricsRegistry& metrics, const char* name) {
  for (const auto& c : metrics.snapshot().counters) {
    if (c.name == name) return c.value;
  }
  return 0;
}

double query_micros(const LiveSnapshot& snap, const std::vector<std::string>& terms) {
  WallTimer timer;
  std::size_t hits = 0;
  for (const auto& term : terms) {
    if (snap.lookup(term)) ++hits;
  }
  return terms.empty() ? 0.0 : timer.seconds() * 1e6 / static_cast<double>(terms.size());
}

/// One timed ingest of the whole corpus with `search_threads` readers
/// hammering ranked queries against the writer's live snapshots the whole
/// time. Returns docs/s; the sustained query rate comes back in `qps`.
double ingest_docs_per_s(const std::vector<Document>& docs, const std::string& dir,
                         const std::vector<std::string>& probes,
                         std::size_t search_threads, double* qps) {
  std::filesystem::remove_all(dir);
  IndexWriterOptions opts;  // production defaults: auto-flush + background merge
  auto w = IndexWriter::open(dir, opts).value();
  const auto searcher_ptr =
      Searcher::open(SearchSource::live([&w] { return w.snapshot(); })).value();
  const Searcher& searcher = *searcher_ptr;
  std::atomic<bool> done{false};
  std::atomic<std::uint64_t> answered{0};
  std::vector<std::thread> readers;
  for (std::size_t t = 0; t < search_threads; ++t) {
    readers.emplace_back([&, t] {
      std::mt19937 rng(static_cast<std::uint32_t>(17 * t + 1));
      while (!done.load(std::memory_order_acquire)) {
        QueryRequest req;
        req.query = Query::bag({probes[rng() % probes.size()], probes[rng() % probes.size()]});
        req.k = 10;
        req.use_result_cache = false;  // every query really searches
        if (searcher.search(req).has_value()) {
          answered.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  WallTimer timer;
  for (const auto& doc : docs) w.add_document(doc.url, doc.body);
  w.flush();
  const double seconds = timer.seconds();
  done.store(true, std::memory_order_release);
  for (auto& r : readers) r.join();
  *qps = static_cast<double>(answered.load()) / seconds;
  return static_cast<double>(docs.size()) / seconds;
}

}  // namespace

int main() {
  banner("Live ingestion — incremental IndexWriter vs one-shot batch build",
         "docs/LIVE_INDEXING.md (extension beyond Wei & JaJa 2011)");

  auto spec = wikipedia_like();
  spec.total_bytes = static_cast<std::uint64_t>(8.0 * scale() * (1 << 20));
  const auto coll = cached_collection(spec);
  std::vector<Document> docs;
  std::uint64_t raw_bytes = 0;
  for (const auto& file : coll.paths()) {
    for (auto& doc : container_read(file)) {
      raw_bytes += doc.body.size();
      docs.push_back(std::move(doc));
    }
  }

  // Batch reference: the paper's pipeline, straight to a serving segment.
  const std::string batch_dir = bench_dir() + "/live_batch";
  std::filesystem::remove_all(batch_dir);
  IndexBuilder builder;
  builder.emit_segment(true);
  const auto batch_report = builder.build(coll.paths(), batch_dir);
  std::printf("\nCorpus: %zu docs, %s raw text\n", docs.size(),
              format_bytes(raw_bytes).c_str());
  std::printf("Batch build: %.2f s (%.1f MB/s), one segment\n",
              batch_report.total_seconds, batch_report.throughput_mb_s());

  // A fixed probe set for snapshot query latency: every 97th term.
  std::vector<std::string> probes;
  {
    const auto batch = InvertedIndex::open(batch_dir, {IndexBackend::kSegment}).value();
    std::size_t i = 0;
    batch.for_each_term([&](std::string_view term) {
      if (i++ % 97 == 0) probes.emplace_back(term);
    });
  }

  struct SweepRow {
    std::uint64_t flush_kb = 0;
    double docs_per_s = 0, write_amp = 0, q_before_us = 0, q_after_us = 0;
    std::uint64_t flushes = 0, merges = 0;
    std::size_t segments = 0;
  };
  std::vector<SweepRow> sweep;

  std::printf("\n%-12s %10s %8s %8s %10s %8s %10s %10s\n", "flush", "docs/s",
              "flushes", "merges", "write-amp", "segs", "q-us/term", "q-us/cpct");
  row_sep(84);
  for (const std::uint64_t flush_kb : {64ull, 256ull, 1024ull}) {
    const std::string dir = bench_dir() + "/live_ingest_" + std::to_string(flush_kb);
    std::filesystem::remove_all(dir);
    IndexWriterOptions opts;
    opts.flush_threshold_bytes = flush_kb << 10;
    auto w = IndexWriter::open(dir, opts).value();
    WallTimer timer;
    for (const auto& doc : docs) w.add_document(doc.url, doc.body);
    w.flush();
    const double ingest_seconds = timer.seconds();
    const double before_us = query_micros(*w.snapshot(), probes);
    w.compact_now();
    const auto snap = w.snapshot();
    const double after_us = query_micros(*snap, probes);

    // Write amplification of the tiered merge policy: every byte a merge
    // rewrites comes on top of the bytes flushes wrote once (1.0 == no
    // merge ever ran).
    const std::uint64_t flushes = counter_value(w.metrics(), "live_flushes_total");
    const std::uint64_t merges = counter_value(w.metrics(), "compactions_total");
    const std::uint64_t flushed = counter_value(w.metrics(), "live_flushed_bytes_total");
    const std::uint64_t merged = counter_value(w.metrics(), "compaction_bytes_written_total");
    const double write_amp =
        flushed == 0 ? 1.0 : static_cast<double>(flushed + merged) / flushed;

    std::printf("%9llu KB %10.0f %8llu %8llu %10.2f %8zu %10.1f %10.1f\n",
                static_cast<unsigned long long>(flush_kb),
                static_cast<double>(docs.size()) / ingest_seconds,
                static_cast<unsigned long long>(flushes),
                static_cast<unsigned long long>(merges), write_amp,
                snap->segment_count(), before_us, after_us);
    sweep.push_back({flush_kb, static_cast<double>(docs.size()) / ingest_seconds,
                     write_amp, before_us, after_us, flushes, merges,
                     snap->segment_count()});
  }

  // Freshness tax: the same ingest with reader threads continuously
  // searching the live snapshots (memtable included) through a follower
  // Searcher. The delta is the cost of serving queries out of the mutable
  // tier while it is being written.
  double unloaded_qps = 0, loaded_qps = 0;
  const double unloaded = ingest_docs_per_s(docs, bench_dir() + "/live_load_0",
                                            probes, 0, &unloaded_qps);
  const std::size_t readers = 2;
  const double loaded = ingest_docs_per_s(docs, bench_dir() + "/live_load_r",
                                          probes, readers, &loaded_qps);
  std::printf("\n%-24s %12s %12s %12s\n", "memtable search load", "docs/s",
              "ingest cost", "search qps");
  row_sep(64);
  std::printf("%-24s %12.0f %12s %12s\n", "none", unloaded, "-", "-");
  const std::string label = std::to_string(readers) + " reader threads";
  std::printf("%-24s %12.0f %11.1f%% %12.0f\n", label.c_str(), loaded,
              100.0 * (1.0 - loaded / unloaded), loaded_qps);

  // Machine-readable summary (consumed by CI trend tooling).
  std::string json = "{\n  \"bench\": \"live_ingest\",\n  \"rows\": [\n";
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    const auto& r = sweep[i];
    json += "    {\"flush_kb\": " + std::to_string(r.flush_kb) +
            ", \"docs_per_s\": " + obs::json_number(r.docs_per_s) +
            ", \"flushes\": " + std::to_string(r.flushes) +
            ", \"merges\": " + std::to_string(r.merges) +
            ", \"write_amp\": " + obs::json_number(r.write_amp) +
            ", \"segments\": " + std::to_string(r.segments) +
            ", \"query_us_precompact\": " + obs::json_number(r.q_before_us) +
            ", \"query_us_postcompact\": " + obs::json_number(r.q_after_us) + "}";
    json += (i + 1 < sweep.size()) ? ",\n" : "\n";
  }
  json += "  ],\n  \"search_load\": {\"docs_per_s_unloaded\": " +
          obs::json_number(unloaded) +
          ", \"docs_per_s_loaded\": " + obs::json_number(loaded) +
          ", \"reader_threads\": " + std::to_string(readers) +
          ", \"search_qps\": " + obs::json_number(loaded_qps) + "}\n}\n";
  const char* out = std::getenv("HETINDEX_BENCH_JSON");
  const std::string json_path = out != nullptr ? out : "BENCH_ingest.json";
  write_file(json_path, std::vector<std::uint8_t>(json.begin(), json.end()));
  std::printf("\nwrote %s\n", json_path.c_str());

  std::printf("\nIngest throughput rises with the flush threshold (fewer, larger\n"
              "segments to write); query latency falls after compaction as the\n"
              "per-term lookup touches fewer segments.\n");
  bool ok = unloaded > 0 && loaded > 0 && loaded_qps > 0;
  if (!ok) std::printf("FAIL: degenerate measurement (zero throughput)\n");
  return ok ? 0 : 1;
}
