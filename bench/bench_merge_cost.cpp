/// \file bench_merge_cost.cpp
/// §III.F: "If necessary, we can combine the partial postings lists of
/// each term into a single list in a post-processing step, with an
/// additional cost of less than 10% of the total running time." Builds the
/// ClueWeb-like collection with the merge pass enabled and reports the
/// merge cost relative to the build, plus the resulting file inventory.

#include <cstdio>
#include <filesystem>

#include "bench_common.hpp"
#include "pipeline/engine.hpp"
#include "postings/query.hpp"
#include "postings/run_file.hpp"

using namespace hetindex;
using namespace hetindex::bench;

int main() {
  banner("Merge pass cost — monolithic postings from per-run files",
         "Wei & JaJa 2011, §III.F (<10% of total running time)");

  auto spec = clueweb_like(scale());
  spec.total_bytes = static_cast<std::uint64_t>(32.0 * scale() * (1 << 20));
  // Larger runs amortize per-file open/CRC overhead the way the paper's
  // 1 GB runs do (still ~250x smaller).
  spec.file_bytes = 4u << 20;
  const auto coll = cached_collection(spec);

  PipelineConfig pc;
  pc.parsers = 2;
  pc.cpu_indexers = 2;
  pc.gpus = 2;
  pc.merge_after_build = true;
  pc.output_dir = bench_dir() + "/merge_out";
  PipelineEngine engine(pc);
  const auto report = engine.build(coll.paths());

  std::uint64_t run_bytes = 0, merged_bytes = 0;
  for (const auto& e : std::filesystem::directory_iterator(pc.output_dir)) {
    const auto name = e.path().filename().string();
    if (name.rfind("run_", 0) == 0) run_bytes += e.file_size();
    if (name == "merged.post") merged_bytes = e.file_size();
  }
  const double merge_fraction = report.merge_seconds / report.total_seconds;
  std::printf("\nRuns: %zu files, %s of partial postings\n", report.runs.size(),
              format_bytes(run_bytes).c_str());
  std::printf("Merged: %s (one contiguous list per term)\n",
              format_bytes(merged_bytes).c_str());
  std::printf("Build total: %.3f s; merge pass: %.3f s (%.1f%% of total)\n",
              report.total_seconds, report.merge_seconds, merge_fraction * 100.0);

  // The merged file must answer queries identically to run concatenation.
  const auto index = InvertedIndex::open(pc.output_dir, {}).value();
  const auto merged = RunFile::open(IndexLayout::merged_path(pc.output_dir));
  std::size_t checked = 0, agree = 0;
  for (const auto& e : index.entries()) {
    const auto full = index.lookup(e.term);
    std::vector<std::uint32_t> ids, tfs;
    if (merged.fetch({e.shard, e.handle}, ids, tfs) && ids == full->doc_ids &&
        tfs == full->tfs) {
      ++agree;
    }
    if (++checked >= 2000) break;
  }
  std::filesystem::remove_all(pc.output_dir);

  std::printf("\nShape checks: merge output equals run concatenation (%zu/%zu terms\n"
              "sampled): %s; merge cost small (<20%% here; the paper bounds it at 10%%\n"
              "on 1 GB runs where per-file open/CRC overhead amortizes ~250x\n"
              "better than on our 2 MB runs — the pass itself is a byte-level\n"
              "concatenation with no re-encoding): %s; merged file no larger than\n"
              "the runs plus one table: %s\n",
              agree, checked, agree == checked ? "PASS" : "MISS",
              merge_fraction < 0.20 ? "PASS" : "MISS",
              merged_bytes < run_bytes + (1u << 20) ? "PASS" : "MISS");
  return 0;
}
