/// \file bench_fig12_mapreduce_comparison.cpp
/// Reproduces Fig. 12 / Table VII: throughput of this paper's pipeline
/// (with and without GPUs, single node) against Ivory MapReduce (99 × 2
/// cores) and Single-Pass MapReduce (8 × 3 cores), all building the same
/// logical index over the same collection. Expected shape (paper): the
/// architecture-aware single-node pipeline beats both cluster MapReduce
/// systems in raw throughput; GPUs widen the margin.

#include <cstdio>
#include <filesystem>

#include "bench_common.hpp"
#include "mapreduce/mr_indexers.hpp"
#include "mapreduce/remote_lists.hpp"
#include "pipeline/engine.hpp"
#include "sim/pipeline_sim.hpp"

using namespace hetindex;
using namespace hetindex::bench;

int main() {
  banner("Fig. 12 / Table VII — Comparison to MapReduce indexers",
         "Wei & JaJa 2011, Fig. 12");

  auto spec = clueweb_like(scale());
  spec.total_bytes = static_cast<std::uint64_t>(24.0 * scale() * (1 << 20));
  spec.file_bytes = 2u << 20;
  const auto coll = cached_collection(spec);
  std::printf("Corpus: %s uncompressed, %zu files (all systems index it fully)\n",
              format_bytes(coll.total_uncompressed()).c_str(), coll.files.size());

  struct Entry {
    std::string label;
    double mb_s;
    std::string platform;
  };
  std::vector<Entry> entries;

  // Our pipeline, with and without GPUs, on the paper's single node.
  PipelineSimulator sim;
  for (const std::size_t gpus : {std::size_t{2}, std::size_t{0}}) {
    PipelineConfig pc;
    pc.parsers = 2;
    pc.cpu_indexers = 2;
    pc.gpus = gpus;
    const auto report = measured_report(coll, pc);  // best-of-2 stage costs
    SimPipelineConfig sc;
    sc.parsers = 6;
    sc.cpu_indexers = 2;
    sc.gpus = gpus;
    const auto des = sim.simulate(report.runs, sc);
    const double total = report.sampling_seconds + des.total_seconds +
                         report.dict_combine_seconds + report.dict_write_seconds;
    entries.push_back({gpus ? "This work (6P+2C+2GPU)" : "This work (no GPU)",
                       static_cast<double>(report.uncompressed_bytes) / (1024.0 * 1024.0) /
                           total,
                       "1 node, 8 cores" + std::string(gpus ? " + 2 C1060" : "")});
  }

  // The two MapReduce baselines on their modelled clusters, plus the
  // pre-MapReduce distributed state of the art ([6], §II).
  {
    const auto ivory = ivory_mr_index(coll.paths(), ivory_cluster(), 64);
    entries.push_back({"Ivory MapReduce", ivory.stats.throughput_mb_s(), "99 nodes, 198 cores"});
    const auto sp = singlepass_mr_index(coll.paths(), sp_cluster(), 16);
    entries.push_back({"Single-Pass MapReduce", sp.stats.throughput_mb_s(), "8 nodes, 24 cores"});
    const auto rl = remote_lists_index(coll.paths(), sp_cluster());
    entries.push_back({"Remote-Lists (R-N et al.)", rl.stats.throughput_mb_s(), "8 nodes, 24 cores"});
  }

  std::printf("\n%-26s %12s   %s\n", "System", "MB/s", "Platform (modelled)");
  row_sep(72);
  double peak = 0;
  for (const auto& e : entries) peak = std::max(peak, e.mb_s);
  for (const auto& e : entries) {
    std::printf("%-26s %12.2f   %-24s |", e.label.c_str(), e.mb_s, e.platform.c_str());
    const int bar = static_cast<int>(e.mb_s / peak * 30);
    for (int i = 0; i < bar; ++i) std::putchar('#');
    std::putchar('\n');
  }

  std::printf("\nPaper (full-scale): this work 262.8 MB/s (GPU) / 204.3 MB/s (no GPU);\n"
              "Ivory ≈ 130 MB/s on 99 nodes; SP-MR ≈ 60 MB/s on 8 nodes.\n");
  const bool ours_wins = entries[0].mb_s > entries[2].mb_s && entries[0].mb_s > entries[3].mb_s;
  const bool no_gpu_wins = entries[1].mb_s > entries[3].mb_s;
  const bool gpu_margin = entries[0].mb_s > entries[1].mb_s;
  std::printf("\nShape checks: pipeline beats both MR systems: %s; even without GPUs it\n"
              "beats SP-MR: %s; GPUs widen the margin: %s\n",
              ours_wins ? "PASS" : "MISS", no_gpu_wins ? "PASS" : "MISS",
              gpu_margin ? "PASS" : "MISS");
  return 0;
}
