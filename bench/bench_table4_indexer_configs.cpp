/// \file bench_table4_indexer_configs.cpp
/// Reproduces Table IV: detailed indexer-stage times under four
/// configurations (6 parsers each):
///   (i)  2 GPU indexers, no CPU indexers;
///   (ii) 1 CPU indexer;
///   (iii) 2 CPU indexers;
///   (iv) 2 CPU + 2 GPU indexers.
/// Rows: pre-processing, indexing, post-processing, their sum, total
/// indexer (stage wall incl. waiting on parsers), indexing throughput and
/// total indexer throughput. Expected shape (paper): 2 CPUs ≈ 1.77× one
/// CPU; adding 2 GPUs gains ~38% more; CPU+GPU throughput exceeds the sum
/// of CPU-only and GPU-only (superlinear split, §IV.B).

#include <cstdio>
#include <filesystem>

#include "bench_common.hpp"
#include "pipeline/engine.hpp"
#include "sim/pipeline_sim.hpp"

using namespace hetindex;
using namespace hetindex::bench;

int main() {
  banner("Table IV — Scalability of the number of parallel indexers",
         "Wei & JaJa 2011, Table IV (DES on measured stage costs)");

  auto spec = clueweb_like(scale());
  spec.total_bytes = static_cast<std::uint64_t>(32.0 * scale() * (1 << 20));
  spec.file_bytes = 2u << 20;
  const auto coll = cached_collection(spec);
  std::printf("Corpus: %s uncompressed, %zu files\n",
              format_bytes(coll.total_uncompressed()).c_str(), coll.files.size());

  struct Config {
    const char* label;
    std::size_t cpus;
    std::size_t gpus;
  };
  const Config configs[] = {
      {"6P + 2 GPU", 0, 2},
      {"6P + 1 CPU", 1, 0},
      {"6P + 2 CPU", 2, 0},
      {"6P + 2 CPU + 2 GPU", 2, 2},
  };

  PipelineSimulator sim;
  struct Outcome {
    SimResult r;
  };
  std::vector<SimResult> outcomes;

  for (const auto& cfg : configs) {
    PipelineConfig pc;
    pc.parsers = 2;
    pc.cpu_indexers = cfg.cpus;
    pc.gpus = cfg.gpus;
    const auto report = measured_report(coll, pc);  // best-of-2 stage costs

    SimPipelineConfig sc;
    sc.parsers = 6;
    sc.cpu_indexers = cfg.cpus;
    sc.gpus = cfg.gpus;
    outcomes.push_back(sim.simulate(report.runs, sc));
  }

  std::printf("\n%-28s", "Row");
  for (const auto& cfg : configs) std::printf(" %18s", cfg.label);
  std::printf("\n");
  row_sep(106);
  auto row = [&](const char* label, auto getter, const char* fmt) {
    std::printf("%-28s", label);
    for (const auto& o : outcomes) std::printf(fmt, getter(o));
    std::printf("\n");
  };
  row("Pre-Processing (s)", [](const SimResult& r) { return r.pre_seconds; }, " %18.3f");
  row("Indexing (s)", [](const SimResult& r) { return r.indexing_seconds; }, " %18.3f");
  row("Post-Processing (s)", [](const SimResult& r) { return r.post_seconds; }, " %18.3f");
  row("Sum of above three (s)",
      [](const SimResult& r) { return r.pre_seconds + r.indexing_seconds + r.post_seconds; },
      " %18.3f");
  row("Total indexer time (s)", [](const SimResult& r) { return r.index_stage_seconds; },
      " %18.3f");
  row("Indexing throughput (MB/s)",
      [](const SimResult& r) { return r.indexing_throughput_mb_s(); }, " %18.2f");
  row("Total idx throughput (MB/s)",
      [](const SimResult& r) { return r.indexer_throughput_mb_s(); }, " %18.2f");

  const double t_gpu = outcomes[0].indexing_throughput_mb_s();
  const double t_1cpu = outcomes[1].indexing_throughput_mb_s();
  const double t_2cpu = outcomes[2].indexing_throughput_mb_s();
  const double t_het = outcomes[3].indexing_throughput_mb_s();
  std::printf("\nDerived ratios (paper values in parentheses):\n");
  std::printf("  2 CPU vs 1 CPU speedup:        %.2fx  (1.77x)\n", t_2cpu / t_1cpu);
  std::printf("  +2 GPUs on top of 2 CPUs:      +%.1f%%  (+37.7%%)\n",
              (t_het / t_2cpu - 1.0) * 100.0);
  std::printf("  CPU+GPU vs CPU-only + GPU-only: %.2fx  (>1 = superlinear split)\n",
              t_het / (t_2cpu + t_gpu));
  std::printf("\nShape checks: 2CPU > 1CPU: %s; CPU+GPU best: %s; GPU-only slowest of\n"
              "the accelerated configs (unpopular-only work suits it, popular does not): %s\n",
              t_2cpu > t_1cpu * 1.3 ? "PASS" : "MISS",
              (t_het > t_2cpu && t_het > t_1cpu && t_het > t_gpu) ? "PASS" : "MISS",
              t_gpu < t_2cpu ? "PASS" : "MISS");
  return 0;
}
