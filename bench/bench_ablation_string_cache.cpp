/// \file bench_ablation_string_cache.cpp
/// Ablation of the 4-byte string caches inside B-tree nodes (§III.B.2,
/// Table II): with caches, most key comparisons resolve without
/// dereferencing the term-string pointer; the paper argues ~2× faster
/// string comparisons after prefix stripping (average stemmed token 6.6
/// chars → 3 stripped by the trie → ~4 remain, usually fully cached).

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "dict/btree.hpp"
#include "util/timer.hpp"
#include "util/zipf.hpp"

using namespace hetindex;
using namespace hetindex::bench;

int main() {
  banner("Ablation — B-tree node string caches (Table II)", "Wei & JaJa 2011, §III.B.2");

  // Key workload: Zipf-distributed suffixes with realistic lengths.
  const Vocabulary vocab(200000, 0.03, 0.01, 77);
  ZipfSampler zipf(vocab.size(), 1.0);
  Rng rng(5);
  std::vector<std::string> stream;
  stream.reserve(2000000);
  for (int i = 0; i < 2000000; ++i) {
    const auto& w = vocab.word(zipf(rng));
    stream.push_back(w.size() > 3 ? w.substr(3) : w);  // post-trie suffixes
  }

  // Best-of-three per variant: single-shot wall times on a shared host
  // carry enough noise to flip a ~10% effect.
  auto run = [&](bool use_cache) {
    double best = 1e30;
    BTreeStats stats{};
    for (int rep = 0; rep < 3; ++rep) {
      Arena arena;
      BTree tree(arena, use_cache);
      WallTimer t;
      for (const auto& key : stream) tree.find_or_insert(key);
      const double secs = t.seconds();
      if (secs < best) {
        best = secs;
        stats = tree.stats();
      }
    }
    return std::tuple<double, BTreeStats>(best, stats);
  };

  const auto [cached_s, cached_stats] = run(true);
  const auto [plain_s, plain_stats] = run(false);

  std::printf("\n%zu inserts (%llu distinct terms):\n", stream.size(),
              static_cast<unsigned long long>(cached_stats.keys));
  std::printf("  with 4-byte caches:    %7.3f s   cache-resolved cmps: %llu, string reads: %llu\n",
              cached_s, static_cast<unsigned long long>(cached_stats.cache_hits),
              static_cast<unsigned long long>(cached_stats.string_reads));
  std::printf("  without caches:        %7.3f s   string reads: %llu\n", plain_s,
              static_cast<unsigned long long>(plain_stats.string_reads));
  const double speedup = plain_s / cached_s;
  const double resolved = static_cast<double>(cached_stats.cache_hits) /
                          static_cast<double>(cached_stats.cache_hits +
                                              cached_stats.string_reads) *
                          100.0;
  std::printf("  speedup: %.2fx; comparisons resolved by cache: %.1f%%\n", speedup, resolved);
  std::printf("\nShape checks: cache resolves the vast majority of comparisons (>90%%): %s;\n"
              "caches do not slow insertion down and usually speed it up: %s\n"
              "(paper: ~2x faster string comparisons on its 8 MB-L3 Xeons; this host's\n"
              "much larger cache hierarchy absorbs most pointer dereferences, so the\n"
              "wall-clock gap narrows even though the cache answers %.1f%% of compares)\n",
              resolved > 90.0 ? "PASS" : "MISS", speedup > 1.02 ? "PASS" : "MISS",
              resolved);
  return 0;
}
