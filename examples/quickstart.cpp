/// \file quickstart.cpp
/// Minimal end-to-end tour of the public API: generate a small synthetic
/// collection, build the inverted files with the heterogeneous pipeline,
/// and run a few queries.
///
///   ./quickstart [work_dir]

#include <cstdio>

#include "core/hetindex.hpp"

int main(int argc, char** argv) {
  const std::string work_dir = argc > 1 ? argv[1] : "/tmp/hetindex_quickstart";

  // 1. A document collection. Normally these are your own container files
  //    (corpus/container.hpp shows the format); here we synthesize one.
  auto spec = hetindex::wikipedia_like();
  spec.total_bytes = 4u << 20;
  const auto collection = hetindex::generate_collection(spec, work_dir + "/corpus");
  std::printf("corpus: %llu documents in %zu files\n",
              static_cast<unsigned long long>(collection.total_docs()),
              collection.files.size());

  // 2. Build the inverted files. Defaults follow the paper's best single-
  //    node configuration; tune parsers/indexers to your machine.
  hetindex::IndexBuilder builder;
  builder.parsers(2).cpu_indexers(2).gpus(2);
  const auto report = builder.build(collection.paths(), work_dir + "/index");
  std::printf("indexed %llu tokens into %llu terms in %.2f s (%.1f MB/s)\n",
              static_cast<unsigned long long>(report.tokens),
              static_cast<unsigned long long>(report.terms), report.total_seconds,
              report.throughput_mb_s());

  // The report embeds a metrics snapshot (docs/OBSERVABILITY.md): stage
  // times, queue depths and back-pressure stalls for diagnosing pipelines.
  std::printf("observability: reorder window peaked at %lld blocks; "
              "parsers stalled %.3f s on back-pressure\n",
              static_cast<long long>(
                  report.metrics.gauge("reorder_buffer_depth")
                      ? report.metrics.gauge("reorder_buffer_depth")->max
                      : 0),
              report.metrics.time_seconds("reorder_buffer_producer_stall_seconds_total"));

  // 3. Query. Terms are normalized (lowercase + Porter stem) the same way
  //    the indexer normalized them. The synthetic vocabulary is random, so
  //    we query terms sampled from the dictionary itself, plus a stop word
  //    to show that those were removed at parse time.
  const auto index = hetindex::InvertedIndex::open(work_dir + "/index", {}).value();
  std::vector<std::string> queries;
  for (std::size_t i = 0; i < index.entries().size() && queries.size() < 3;
       i += index.entries().size() / 3) {
    queries.push_back(index.entries()[i].term);
  }
  queries.emplace_back("the");  // stop word → never indexed
  for (const auto& raw : queries) {
    const auto term = hetindex::normalize_term(raw);
    const auto postings = index.lookup(term);
    if (!postings) {
      std::printf("  %-14s -> (stem %-12s) not in the index\n", raw.c_str(), term.c_str());
      continue;
    }
    std::printf("  %-14s -> (stem %-12s) %zu documents, first doc %u (tf %u)\n",
                raw.c_str(), term.c_str(), postings->doc_ids.size(), postings->doc_ids[0],
                postings->tfs[0]);
  }

  // 4. Serve. The Searcher facade answers ranked (BM25, MaxScore-pruned)
  //    and boolean requests, caching decoded postings and finished results
  //    across calls; SearchService would put a thread pool and admission
  //    control in front of it (docs/SERVING.md).
  const hetindex::DocMap docs =
      hetindex::DocMap::open(hetindex::doc_map_path(work_dir + "/index"));
  const auto searcher =
      hetindex::Searcher::open(hetindex::SearchSource::batch(index, docs)).value();
  hetindex::QueryRequest request;
  request.query = hetindex::Query::bag({queries[0], queries[1]});
  request.k = 3;
  const auto response = searcher->search(request);
  if (response.has_value()) {
    std::printf("top-%zu for \"%s %s\" (BM25):\n", request.k, queries[0].c_str(),
                queries[1].c_str());
    for (const auto& hit : response.value().hits) {
      std::printf("  doc %-8u score %.3f  %s\n", hit.doc_id, hit.score,
                  docs.location(hit.doc_id).url.c_str());
    }
  }
  return 0;
}
