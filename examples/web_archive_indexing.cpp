/// \file web_archive_indexing.cpp
/// Domain scenario 1: indexing a web crawl (the paper's ClueWeb09 use
/// case). Demonstrates the full operational surface a search-backend team
/// would touch:
///   - ingesting raw HTML documents into container files,
///   - sizing the worker split (sampling report),
///   - building with the heterogeneous pipeline,
///   - the per-run output layout and doc-ID-range narrowed queries
///     (§III.F: fetch only the runs that overlap a crawl window),
///   - merging partial postings into a monolithic file.
///
///   ./web_archive_indexing [work_dir]

#include <cstdio>

#include "core/hetindex.hpp"

using namespace hetindex;

int main(int argc, char** argv) {
  const std::string work_dir = argc > 1 ? argv[1] : "/tmp/hetindex_web_archive";

  // ---- Ingest: pack crawled pages into compressed container files. Here
  // the "crawl" is synthesized HTML; with real data you would fill
  // Document{url, body} yourself and call container_write per ~1 GB batch.
  auto spec = clueweb_like();
  spec.total_bytes = 8u << 20;
  spec.file_bytes = 1u << 20;
  const auto crawl = generate_collection(spec, work_dir + "/crawl");
  std::printf("crawl: %zu container files, %s compressed / %s raw\n", crawl.files.size(),
              format_bytes(crawl.total_compressed()).c_str(),
              format_bytes(crawl.total_uncompressed()).c_str());

  // ---- Inspect the popularity split before committing to a config
  // (§III.E: popular collections → CPU caches, the long tail → GPUs).
  SamplerConfig sampler;
  const auto split = sample_and_split(crawl.paths(), sampler);
  std::uint64_t popular_tokens = 0, total_tokens = 0;
  for (auto c : split.popular) popular_tokens += split.sampled_tokens[c];
  for (auto t : split.sampled_tokens) total_tokens += t;
  std::printf("sampling: %zu popular collections carry %.1f%% of sampled tokens\n",
              split.popular.size(),
              100.0 * static_cast<double>(popular_tokens) /
                  static_cast<double>(total_tokens));

  // ---- Build.
  IndexBuilder builder;
  builder.parsers(2).cpu_indexers(2).gpus(2).merge_output(true);
  const auto report = builder.build(crawl.paths(), work_dir + "/index");
  std::printf("build: %llu docs, %llu terms, %zu runs, merge pass %.3f s\n",
              static_cast<unsigned long long>(report.documents),
              static_cast<unsigned long long>(report.terms), report.runs.size(),
              report.merge_seconds);
  std::printf("work split: CPU %llu tokens / GPU %llu tokens (Table V shape)\n",
              static_cast<unsigned long long>(report.cpu_total().tokens),
              static_cast<unsigned long long>(report.gpu_total().tokens));

  // ---- Query with doc-ID-range narrowing: a crawl window corresponds to
  // a doc-id range; only overlapping run files are decoded.
  const auto index = InvertedIndex::open(work_dir + "/index", {}).value();
  const auto term = normalize_term("contact");
  const std::uint32_t window_lo = 0;
  const std::uint32_t window_hi = report.documents / 4;
  std::size_t runs_touched = 0;
  const auto hits = index.lookup_range(term, window_lo, window_hi, &runs_touched);
  std::printf("range query '%s' over docs [%u, %u]: %zu hits, touched %zu of %zu runs\n",
              term.c_str(), window_lo, window_hi, hits ? hits->doc_ids.size() : 0,
              runs_touched, index.run_count());

  const auto full = index.lookup(term);
  std::printf("full query '%s': %zu hits across the whole crawl\n", term.c_str(),
              full ? full->doc_ids.size() : 0);
  return 0;
}
