/// \file capacity_planning.cpp
/// Domain scenario 2: capacity planning with the platform simulator. A
/// team with a different machine (more cores, faster disk, one GPU, ...)
/// wants to know the best parser/indexer split *before* buying hardware or
/// running a TB-scale build. This example measures real per-stage costs on
/// a small sample build, then sweeps configurations through the DES
/// pipeline model — the same methodology behind the paper's Fig. 10.
///
///   ./capacity_planning [work_dir]

#include <cstdio>
#include <map>
#include <filesystem>

#include "core/hetindex.hpp"

using namespace hetindex;

int main(int argc, char** argv) {
  const std::string work_dir = argc > 1 ? argv[1] : "/tmp/hetindex_capacity";

  auto spec = congress_like();
  spec.total_bytes = 8u << 20;
  spec.file_bytes = 1u << 20;
  const auto coll = generate_collection(spec, work_dir + "/corpus");

  // Measure real stage costs once per indexer split we care about (cached:
  // the DES varies the parser count for free, but each distinct indexer
  // split changes the popularity partition and needs its own probe build).
  std::map<std::pair<std::size_t, std::size_t>, std::vector<RunRecord>> probe_cache;
  auto records_for = [&](std::size_t cpus,
                         std::size_t gpus) -> const std::vector<RunRecord>& {
    auto& slot = probe_cache[{cpus, gpus}];
    if (slot.empty()) {
      IndexBuilder builder;
      builder.parsers(2).cpu_indexers(cpus).gpus(gpus);
      const auto report = builder.build(coll.paths(), work_dir + "/probe");
      std::filesystem::remove_all(work_dir + "/probe");
      slot = report.runs;
    }
    return slot;
  };

  struct Machine {
    const char* name;
    PlatformModel platform;
  };
  Machine machines[] = {
      {"paper node (8 cores, 100 MB/s disk, 2 GPUs)", {}},
      {"fat node (16 cores, 400 MB/s NVMe, 2 GPUs)", {16, 400.0, 1.0, 2}},
      {"budget node (4 cores, 100 MB/s disk, 1 GPU)", {4, 100.0, 1.0, 1}},
  };

  for (const auto& m : machines) {
    std::printf("\n=== %s\n", m.name);
    PipelineSimulator sim(m.platform);
    double best = 0;
    std::size_t best_m = 0, best_c = 0, best_g = 0;
    std::printf("%8s %8s %6s %12s\n", "parsers", "cpu-idx", "gpus", "MB/s");
    for (std::size_t gpus : {std::size_t{0}, m.platform.gpus}) {
      for (std::size_t parsers = 1; parsers < m.platform.cores; ++parsers) {
        const std::size_t cpus = m.platform.cores - parsers;
        if (cpus == 0) continue;
        const auto records = records_for(std::min<std::size_t>(cpus, 4), gpus);
        SimPipelineConfig cfg;
        cfg.parsers = parsers;
        cfg.cpu_indexers = std::min<std::size_t>(cpus, 4);
        cfg.gpus = gpus;
        const auto result = sim.simulate(records, cfg);
        const double mb_s = result.throughput_mb_s();
        if (parsers % 2 == 0 || parsers == 1) {
          std::printf("%8zu %8zu %6zu %12.2f\n", parsers, cfg.cpu_indexers, gpus, mb_s);
        }
        if (mb_s > best) {
          best = mb_s;
          best_m = parsers;
          best_c = cfg.cpu_indexers;
          best_g = gpus;
        }
      }
    }
    std::printf("best: %zu parsers + %zu CPU indexers + %zu GPUs -> %.2f MB/s\n", best_m,
                best_c, best_g, best);
  }
  std::printf("\n(The paper's own sweep lands on 6 parsers + 2 CPU + 2 GPU for its\n"
              "8-core node — compare the first machine's best row.)\n");
  return 0;
}
