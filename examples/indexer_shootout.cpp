/// \file indexer_shootout.cpp
/// Domain scenario 3: comparing index-construction strategies on the same
/// corpus — the paper's hybrid trie+B-tree (regrouped and not), a single
/// global B-tree, a hash map, classic sort-based inversion (Moffat–Bell),
/// SPIMI (Heinz–Zobel), and the two MapReduce baselines — all verified to
/// produce the same logical index before timing is reported.
///
///   ./indexer_shootout [work_dir]

#include <cstdio>

#include "core/hetindex.hpp"

using namespace hetindex;

int main(int argc, char** argv) {
  const std::string work_dir = argc > 1 ? argv[1] : "/tmp/hetindex_shootout";

  auto spec = wikipedia_like();
  spec.total_bytes = 6u << 20;
  const auto coll = generate_collection(spec, work_dir + "/corpus");

  const auto reference = hash_index(coll.paths());
  std::printf("corpus: %llu tokens, %llu distinct terms\n\n",
              static_cast<unsigned long long>(reference.tokens),
              static_cast<unsigned long long>(reference.terms()));

  struct Entry {
    std::string name;
    double index_seconds;
    bool correct;
  };
  std::vector<Entry> entries;
  auto check = [&](const std::map<std::string, PostingsList>& got) {
    if (got.size() != reference.index.size()) return false;
    auto it = reference.index.begin();
    for (const auto& [term, list] : got) {
      if (term != it->first || list.doc_ids != it->second.doc_ids ||
          list.tfs != it->second.tfs)
        return false;
      ++it;
    }
    return true;
  };

  entries.push_back({"hash map (reference)", reference.index_seconds, true});
  {
    const auto r = serial_trie_index(coll.paths(), /*regrouped=*/true);
    entries.push_back({"trie + B-trees, regrouped", r.index_seconds, check(r.index)});
  }
  {
    const auto r = serial_trie_index(coll.paths(), /*regrouped=*/false);
    entries.push_back({"trie + B-trees, stream order", r.index_seconds, check(r.index)});
  }
  {
    const auto r = single_btree_index(coll.paths());
    entries.push_back({"single global B-tree", r.index_seconds, check(r.index)});
  }
  {
    const auto r = sort_based_index(coll.paths(), 1 << 18);
    entries.push_back({"sort-based (Moffat-Bell)", r.index_seconds, check(r.index)});
  }
  {
    const auto r = spimi_index(coll.paths(), 1 << 18);
    entries.push_back({"SPIMI (Heinz-Zobel)", r.index_seconds, check(r.index)});
  }
  {
    const auto r = ivory_mr_index(coll.paths(), sp_cluster(), 8);
    entries.push_back({"Ivory-style MapReduce*", r.stats.reduce_seconds, check(r.index)});
  }
  {
    const auto r = singlepass_mr_index(coll.paths(), sp_cluster(), 8);
    entries.push_back({"single-pass MapReduce*", r.stats.reduce_seconds, check(r.index)});
  }
  {
    const auto r = remote_lists_index(coll.paths(), sp_cluster());
    entries.push_back({"remote-lists (distributed)*", r.stats.insert_seconds, check(r.index)});
  }

  std::printf("%-32s %14s %10s\n", "strategy", "index time (s)", "correct");
  for (const auto& e : entries) {
    std::printf("%-32s %14.3f %10s\n", e.name.c_str(), e.index_seconds,
                e.correct ? "yes" : "NO");
  }
  std::printf("\n* MapReduce rows show the modelled reduce-phase time only; their\n"
              "  end-to-end cluster times appear in bench_fig12.\n");
  return 0;
}
