/// \file hetindex_cli.cpp
/// Command-line front end — the operational tool a downstream team would
/// actually run. One uniform verb surface:
///
///   hetindex_cli <verb> [positionals] [--flag[ value]...]
///   hetindex_cli <verb> --help        per-verb usage
///
///   generate  synthesize a corpus          (--preset, --mb)
///   build     batch-build an index         (--parsers, --cpus, --gpus, ...)
///   compact   fold run files into index.seg, or run the live merge policy
///   live      incremental-ingestion demo   (--flush-mb, --merge-factor, ...)
///   cluster   ingest into a sharded serving cluster (--shards, --strategy, ...)
///   query     AND query                    (works on batch, live, cluster dirs)
///   search    query-language search        (--k, --deadline-ms, ...; the
///             arguments form one expression, e.g. 'fast "inverted files"
///             AND gpu' — docs/QUERIES.md; --mode is a deprecated shim)
///   serve     thread-pooled serving bench  (--threads, --queue, --repeat,
///             ...; reports tail latency per query class)
///   phrase    exact-phrase query           (any dir flavor, via the AST)
///   stats     index shape summary          (batch and live dirs)
///   verify    structural index check
///
/// query/search/serve dispatch on the directory flavor automatically: a
/// CLUSTER meta file opens the sharded scatter-gather router
/// (docs/CLUSTER.md), a MANIFEST opens the live snapshot, anything else the
/// batch index (preferring the compacted segment when one exists) — all
/// behind the same SearchBackend. Open and configuration problems are
/// reported as structured errors (util/error.hpp), never aborts.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <future>
#include <iostream>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/hetindex.hpp"

using namespace hetindex;

namespace {

// ------------------------------------------------------------ arg parsing

/// One accepted flag of a verb; flags are spelled --kebab-case everywhere.
struct FlagSpec {
  const char* name;      ///< without the leading --
  bool takes_value;
  const char* help;
};

/// Uniform per-verb parser: positionals + declared flags + generated
/// --help. Unknown or incomplete flags print usage and fail.
class ArgParser {
 public:
  ArgParser(std::string verb, std::string positional_help, std::vector<FlagSpec> specs)
      : verb_(std::move(verb)),
        positional_help_(std::move(positional_help)),
        specs_(std::move(specs)) {}

  /// Returns false when parsing failed or --help was requested (usage is
  /// already printed; the caller returns the exit code).
  bool parse(int argc, char** argv) {
    for (int i = 0; i < argc; ++i) {
      const char* arg = argv[i];
      if (std::strncmp(arg, "--", 2) != 0) {
        positionals_.emplace_back(arg);
        continue;
      }
      if (std::strcmp(arg, "--help") == 0) {
        print_usage(stdout);
        help_ = true;
        return false;
      }
      const FlagSpec* spec = nullptr;
      for (const auto& s : specs_) {
        if (std::strcmp(arg + 2, s.name) == 0) spec = &s;
      }
      if (spec == nullptr) {
        std::fprintf(stderr, "unknown flag for '%s': %s\n", verb_.c_str(), arg);
        print_usage(stderr);
        return false;
      }
      if (spec->takes_value) {
        if (i + 1 >= argc) {
          std::fprintf(stderr, "flag --%s needs a value\n", spec->name);
          print_usage(stderr);
          return false;
        }
        values_[spec->name] = argv[++i];
      } else {
        values_[spec->name] = "";
      }
    }
    return true;
  }

  void print_usage(std::FILE* out) const {
    std::fprintf(out, "usage: hetindex_cli %s %s", verb_.c_str(), positional_help_.c_str());
    for (const auto& s : specs_) {
      std::fprintf(out, " [--%s%s]", s.name, s.takes_value ? " <v>" : "");
    }
    std::fputc('\n', out);
    for (const auto& s : specs_) {
      std::fprintf(out, "  --%-18s %s\n", s.name, s.help);
    }
  }

  [[nodiscard]] bool help_requested() const { return help_; }
  [[nodiscard]] const std::vector<std::string>& positionals() const { return positionals_; }
  [[nodiscard]] bool has(const std::string& name) const { return values_.count(name) > 0; }
  [[nodiscard]] std::string str(const std::string& name, std::string fallback = "") const {
    const auto it = values_.find(name);
    return it == values_.end() ? fallback : it->second;
  }
  [[nodiscard]] double num(const std::string& name, double fallback) const {
    const auto it = values_.find(name);
    return it == values_.end() ? fallback : std::atof(it->second.c_str());
  }

 private:
  std::string verb_;
  std::string positional_help_;
  std::vector<FlagSpec> specs_;
  std::vector<std::string> positionals_;
  std::map<std::string, std::string> values_;
  bool help_ = false;
};

int usage() {
  std::fprintf(stderr,
               "usage: hetindex_cli <verb> ... (--help on any verb for details)\n"
               "  generate <dir>                synthesize a corpus\n"
               "  build <corpus_dir> <index_dir>  batch-build an index\n"
               "  compact <index_dir>           fold runs into index.seg / merge live segments\n"
               "  live <corpus_dir> <index_dir>   incremental-ingestion demo\n"
               "  cluster <corpus_dir> <cluster_dir>  ingest into a sharded cluster\n"
               "  query <index_dir> <term...>   AND query (batch, live or cluster dir)\n"
               "  search <index_dir> <term...>  ranked / boolean search, with URLs\n"
               "  serve <index_dir> [queries]   thread-pooled serving benchmark\n"
               "  phrase <index_dir> <term...>  adjacent-position phrase query\n"
               "  stats <index_dir>             index shape summary\n"
               "  verify <index_dir>            structural check\n");
  return 2;
}

int report_error(const Error& e) {
  std::fprintf(stderr, "error [%s]: %s\n", error_code_name(e.code), e.message.c_str());
  return 1;
}

bool is_live_dir(const std::string& dir) {
  return std::filesystem::exists(manifest_path(dir));
}

std::vector<std::string> corpus_files(const std::string& dir) {
  std::vector<std::string> files;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    if (entry.path().extension() == ".hdc") files.push_back(entry.path().string());
  }
  std::sort(files.begin(), files.end());
  return files;  // empty (callers report it) when dir is missing/unreadable
}

// ------------------------------------------------------------ verbs

int cmd_generate(int argc, char** argv) {
  ArgParser args("generate", "<dir>",
                 {{"preset", true, "clueweb | wikipedia | congress (default wikipedia)"},
                  {"mb", true, "uncompressed corpus size in MB (default 16)"}});
  if (!args.parse(argc, argv)) return args.help_requested() ? 0 : 2;
  if (args.positionals().size() != 1) {
    args.print_usage(stderr);
    return 2;
  }
  const std::string preset = args.str("preset", "wikipedia");
  CollectionSpec spec = preset == "clueweb"    ? clueweb_like()
                        : preset == "congress" ? congress_like()
                                               : wikipedia_like();
  spec.total_bytes = static_cast<std::uint64_t>(args.num("mb", 16) * (1 << 20));
  const auto coll = generate_collection(spec, args.positionals()[0]);
  std::printf("generated %zu files, %s compressed / %s raw, %llu docs\n",
              coll.files.size(), format_bytes(coll.total_compressed()).c_str(),
              format_bytes(coll.total_uncompressed()).c_str(),
              static_cast<unsigned long long>(coll.total_docs()));
  return 0;
}

int cmd_build(int argc, char** argv) {
  ArgParser args("build", "<corpus_dir> <index_dir>",
                 {{"parsers", true, "parser threads (default 2)"},
                  {"cpus", true, "CPU indexers (default 2)"},
                  {"gpus", true, "simulated GPUs (default 2)"},
                  {"prefetch", true, "ingest readahead depth; 1 = serialized reads (default 4)"},
                  {"positions", false, "record in-document token positions"},
                  {"merge", false, "also merge run files into merged.post"},
                  {"segment", false, "also emit the serving segment index.seg"},
                  {"progress", false, "live per-run progress on stderr"},
                  {"metrics", false, "dump Prometheus metrics after the build"},
                  {"report-json", true, "write the build report as JSON"}});
  if (!args.parse(argc, argv)) return args.help_requested() ? 0 : 2;
  if (args.positionals().size() != 2) {
    args.print_usage(stderr);
    return 2;
  }
  IndexBuilder builder;
  builder.parsers(static_cast<std::size_t>(args.num("parsers", 2)))
      .cpu_indexers(static_cast<std::size_t>(args.num("cpus", 2)))
      .gpus(static_cast<std::size_t>(args.num("gpus", 2)))
      .read_prefetch(static_cast<std::size_t>(args.num("prefetch", 4)));
  if (args.has("positions")) builder.config().parser.record_positions = true;
  if (args.has("merge")) builder.merge_output(true);
  if (args.has("segment")) builder.emit_segment(true);
  if (args.has("progress")) {
    builder.progress([](const PipelineProgress& p) {
      std::fprintf(stderr, "\rrun %llu/%llu  %llu docs  %.1f MB/s",
                   static_cast<unsigned long long>(p.runs_completed),
                   static_cast<unsigned long long>(p.files_total),
                   static_cast<unsigned long long>(p.documents), p.throughput_mb_s());
      if (p.runs_completed == p.files_total) std::fputc('\n', stderr);
    });
  }
  // Refuse contradictory configurations up front with the full error list
  // instead of aborting mid-build — the same Error type open() reports.
  if (const auto errors = builder.validate(); !errors.empty()) {
    for (const auto& e : errors) {
      std::fprintf(stderr, "config error [%s]: %s\n", error_code_name(e.code),
                   e.message.c_str());
    }
    return 2;
  }
  const auto files = corpus_files(args.positionals()[0]);
  if (files.empty()) {
    std::fprintf(stderr, "no .hdc container files under %s\n",
                 args.positionals()[0].c_str());
    return 1;
  }
  const auto report = builder.build(files, args.positionals()[1]);
  if (!report.ok()) {
    std::fprintf(stderr, "build failed [%s]: %s\n", error_code_name(report.error->code),
                 report.error->message.c_str());
    return 1;
  }
  std::printf("indexed %llu docs / %llu tokens into %llu terms across %zu runs\n",
              static_cast<unsigned long long>(report.documents),
              static_cast<unsigned long long>(report.tokens),
              static_cast<unsigned long long>(report.terms), report.runs.size());
  std::printf("wall %.2f s (%.1f MB/s on this host); CPU/GPU token split %llu / %llu\n",
              report.total_seconds, report.throughput_mb_s(),
              static_cast<unsigned long long>(report.cpu_total().tokens),
              static_cast<unsigned long long>(report.gpu_total().tokens));
  std::printf("read path: %s (depth %zu, parser stall %.2f s)\n",
              report.read_backend.c_str(), report.config.read_prefetch_depth,
              report.read_stall_seconds);
  if (report.segment_bytes > 0) {
    std::printf("segment: %s written in %.2f s\n",
                format_bytes(report.segment_bytes).c_str(), report.segment_seconds);
  }
  const std::string report_json_path = args.str("report-json");
  if (!report_json_path.empty()) {
    std::ofstream out(report_json_path, std::ios::binary);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", report_json_path.c_str());
      return 1;
    }
    out << report.to_json() << '\n';
    std::printf("report written to %s\n", report_json_path.c_str());
  }
  if (args.has("metrics")) std::fputs(report.metrics.to_prometheus().c_str(), stdout);
  return 0;
}

int cmd_compact(int argc, char** argv) {
  ArgParser args("compact", "<index_dir>", {});
  if (!args.parse(argc, argv)) return args.help_requested() ? 0 : 2;
  if (args.positionals().size() != 1) {
    args.print_usage(stderr);
    return 2;
  }
  const std::string index_dir = args.positionals()[0];
  if (is_live_dir(index_dir)) {
    // Live directory: run the writer's merge policy to completion.
    auto writer = IndexWriter::open(index_dir, {});
    if (!writer.has_value()) return report_error(writer.error());
    auto& w = writer.value();
    const std::size_t before = w.snapshot()->segment_count();
    auto compacted = w.compact_now();
    if (!compacted.has_value()) return report_error(compacted.error());
    std::printf("live compaction: %zu -> %zu segments, %u docs committed\n", before,
                w.snapshot()->segment_count(), w.committed_docs());
    return 0;
  }
  const auto folded = compact_index(index_dir);
  if (!folded.has_value()) return report_error(folded.error());
  const auto& stats = folded.value();
  std::printf("compacted %llu runs into %s: %llu terms, %llu postings, %s -> %s\n",
              static_cast<unsigned long long>(stats.runs),
              IndexLayout::segment_path(index_dir).c_str(),
              static_cast<unsigned long long>(stats.terms),
              static_cast<unsigned long long>(stats.postings),
              format_bytes(stats.input_bytes).c_str(),
              format_bytes(stats.output_bytes).c_str());
  return 0;
}

int cmd_live(int argc, char** argv) {
  ArgParser args("live", "<corpus_dir> <index_dir>",
                 {{"flush-mb", true, "auto-flush threshold in MB (default 1)"},
                  {"merge-factor", true, "segments folded per merge (default 4)"},
                  {"no-compaction", false, "disable the background merge thread"},
                  {"positions", false, "record in-document token positions"},
                  {"delete-every", true, "tombstone every Nth ingested doc (default off)"},
                  {"update-every", true, "re-index every Nth ingested doc in place (default off)"},
                  {"metrics", false, "dump writer metrics at the end"}});
  if (!args.parse(argc, argv)) return args.help_requested() ? 0 : 2;
  if (args.positionals().size() != 2) {
    args.print_usage(stderr);
    return 2;
  }
  IndexWriterOptions opts;
  opts.flush_threshold_bytes =
      static_cast<std::uint64_t>(args.num("flush-mb", 1) * (1 << 20));
  opts.merge_factor = static_cast<std::uint32_t>(args.num("merge-factor", 4));
  opts.background_compaction = !args.has("no-compaction");
  opts.parser.record_positions = args.has("positions");
  auto writer = IndexWriter::open(args.positionals()[1], opts);
  if (!writer.has_value()) return report_error(writer.error());
  auto& w = writer.value();

  const auto files = corpus_files(args.positionals()[0]);
  if (files.empty()) {
    std::fprintf(stderr, "no .hdc container files under %s\n",
                 args.positionals()[0].c_str());
    return 1;
  }
  const auto delete_every = static_cast<std::uint64_t>(args.num("delete-every", 0));
  const auto update_every = static_cast<std::uint64_t>(args.num("update-every", 0));
  WallTimer timer;
  std::uint64_t bytes = 0;
  for (const auto& file : files) {
    for (const auto& doc : container_read(file)) {
      bytes += doc.body.size();
      const std::uint32_t id = w.add_document(doc.url, doc.body);
      // Exercise the mutable-index paths: both commit durably and take
      // effect in the very next snapshot (no flush involved).
      if (delete_every != 0 && id % delete_every == delete_every - 1) {
        auto removed = w.delete_document(id);
        if (!removed.has_value()) return report_error(removed.error());
      } else if (update_every != 0 && id % update_every == update_every - 1) {
        auto replaced = w.update_document(id, doc.url, doc.body);
        if (!replaced.has_value()) return report_error(replaced.error());
      }
    }
    const auto snap = w.snapshot();
    std::fprintf(stderr, "\ringested %s  (%u committed + %u buffered docs, %zu segments)",
                 format_bytes(bytes).c_str(), w.committed_docs(), w.buffered_docs(),
                 snap->segment_count());
  }
  auto flushed = w.flush();
  if (!flushed.has_value()) return report_error(flushed.error());
  auto compacted = w.compact_now();
  if (!compacted.has_value()) return report_error(compacted.error());
  std::fputc('\n', stderr);
  const auto snap = w.snapshot();
  std::printf("live index: %llu live docs (%llu deleted), %llu terms, "
              "%zu segments after compaction, %.1f MB/s ingest\n",
              static_cast<unsigned long long>(snap->doc_count()),
              static_cast<unsigned long long>(snap->deleted_docs()),
              static_cast<unsigned long long>(snap->term_count()),
              snap->segment_count(),
              static_cast<double>(bytes) / (1 << 20) / timer.seconds());
  if (args.has("metrics")) std::fputs(w.metrics().to_prometheus().c_str(), stdout);
  return 0;
}

int cmd_cluster(int argc, char** argv) {
  ArgParser args(
      "cluster", "<corpus_dir> <cluster_dir>",
      {{"shards", true, "shard count (default 2; pinned by the CLUSTER meta)"},
       {"strategy", true, "document | term | block (default document)"},
       {"replicas", true, "serving replicas per shard (default 1)"},
       {"block-docs", true, "docs per placement block, block strategy (default 128)"},
       {"positions", false, "record in-document token positions"},
       {"delete-every", true, "tombstone every Nth ingested doc (default off)"},
       {"metrics", false, "dump the router's cluster_* metrics at the end"}});
  if (!args.parse(argc, argv)) return args.help_requested() ? 0 : 2;
  if (args.positionals().size() != 2) {
    args.print_usage(stderr);
    return 2;
  }
  ClusterOptions opts;
  const auto strategy = parse_partition_strategy(args.str("strategy", "document"));
  if (!strategy) {
    std::fprintf(stderr, "unknown --strategy '%s'\n", args.str("strategy").c_str());
    return 2;
  }
  opts.strategy = *strategy;
  opts.shards = static_cast<std::uint32_t>(args.num("shards", 2));
  opts.replicas = static_cast<std::uint32_t>(args.num("replicas", 1));
  opts.block_docs = static_cast<std::uint32_t>(args.num("block-docs", 128));
  opts.writer.parser.record_positions = args.has("positions");
  auto opened = Cluster::open(args.positionals()[1], opts);
  if (!opened.has_value()) return report_error(opened.error());
  auto& cluster = opened.value();

  const auto files = corpus_files(args.positionals()[0]);
  if (files.empty()) {
    std::fprintf(stderr, "no .hdc container files under %s\n",
                 args.positionals()[0].c_str());
    return 1;
  }
  const auto delete_every = static_cast<std::uint64_t>(args.num("delete-every", 0));
  WallTimer timer;
  std::uint64_t bytes = 0, deleted = 0;
  for (const auto& file : files) {
    for (const auto& doc : container_read(file)) {
      bytes += doc.body.size();
      const std::uint32_t id = cluster.add_document(doc.url, doc.body);
      if (delete_every != 0 && id % delete_every == delete_every - 1) {
        auto removed = cluster.delete_document(id);
        if (!removed.has_value()) return report_error(removed.error());
        ++deleted;
      }
    }
  }
  if (auto flushed = cluster.flush(); !flushed.has_value()) {
    return report_error(flushed.error());
  }
  std::printf("cluster %s: %s strategy, %u shards x %u replicas, "
              "%llu docs (%llu deleted), %.1f MB/s ingest\n",
              cluster.dir().c_str(),
              partition_strategy_name(cluster.partitioner().strategy()),
              cluster.shard_count(), cluster.replica_count(),
              static_cast<unsigned long long>(cluster.total_docs()),
              static_cast<unsigned long long>(deleted),
              static_cast<double>(bytes) / (1 << 20) / timer.seconds());
  for (std::uint32_t s = 0; s < cluster.shard_count(); ++s) {
    const auto snap = cluster.shard(s).writer().snapshot();
    std::printf("  shard-%u: %llu live docs, %llu terms, %zu segments\n", s,
                static_cast<unsigned long long>(snap->doc_count()),
                static_cast<unsigned long long>(snap->term_count()),
                snap->segment_count());
  }
  if (args.has("metrics")) {
    const auto router = cluster.make_router();
    std::fputs(router->metrics().to_prometheus().c_str(), stdout);
  }
  return 0;
}

// ------------------------------------------------------------ searching

/// A SearchBackend plus whatever backing objects must stay alive behind it
/// (heap-allocated so their addresses survive moves of this struct).
struct OpenedBackend {
  std::shared_ptr<InvertedIndex> index;
  std::shared_ptr<DocMap> docs;
  std::shared_ptr<const LiveSnapshot> snapshot;  ///< live dirs only
  std::shared_ptr<Cluster> cluster;              ///< cluster dirs only
  std::shared_ptr<SearchBackend> backend;

  /// Best-effort URL of a hit; empty when no doc map covers it. Cluster
  /// hits carry GLOBAL ids — translate through the partitioner to the
  /// owning shard's local id space.
  [[nodiscard]] std::string url_of(std::uint32_t doc_id) const {
    if (docs != nullptr && docs->contains(doc_id)) return docs->location(doc_id).url;
    if (snapshot != nullptr) {
      const auto loc = snapshot->locate(doc_id);
      if (loc.has_value()) return loc->url;
    }
    if (cluster != nullptr) {
      const auto& part = cluster->partitioner();
      const std::uint32_t shard =
          part.replicates_documents() ? 0u : part.doc_shard(doc_id);
      const auto loc =
          cluster->shard(shard).writer().snapshot()->locate(part.local_doc(doc_id));
      if (loc.has_value()) return loc->url;
    }
    return {};
  }
};

/// One facade for every directory flavor: cluster dirs open the
/// scatter-gather router, live dirs serve their committed snapshot, batch
/// dirs pair the index with its doc map when present.
Expected<OpenedBackend> open_backend(const std::string& dir) {
  OpenedBackend out;
  if (Cluster::is_cluster_dir(dir)) {
    auto cluster = Cluster::open(dir, {});
    if (!cluster.has_value()) return cluster.error();
    out.cluster = std::make_shared<Cluster>(std::move(cluster).value());
    out.backend = out.cluster->make_router();
    return out;
  }
  if (is_live_dir(dir)) {
    auto live = LiveIndex::open(dir);
    if (!live.has_value()) return live.error();
    out.snapshot = live.value().snapshot();
    auto searcher = Searcher::open(SearchSource::snapshot(out.snapshot));
    if (!searcher.has_value()) return searcher.error();
    out.backend = std::move(searcher).value();
    return out;
  }
  auto index = InvertedIndex::open(dir, {});
  if (!index.has_value()) return index.error();
  out.index = std::make_shared<InvertedIndex>(std::move(index).value());
  if (std::filesystem::exists(doc_map_path(dir))) {
    out.docs = std::make_shared<DocMap>(DocMap::open(doc_map_path(dir)));
    auto searcher = Searcher::open(SearchSource::batch(*out.index, *out.docs));
    if (!searcher.has_value()) return searcher.error();
    out.backend = std::move(searcher).value();
  } else {
    // No doc map: boolean modes only.
    auto searcher = Searcher::open(SearchSource::batch(*out.index));
    if (!searcher.has_value()) return searcher.error();
    out.backend = std::move(searcher).value();
  }
  return out;
}

/// Legacy --mode shim: the equivalent AST root for callers still spelling
/// a query as flat terms plus a mode name. nullopt on an unknown name.
std::optional<Query> mode_query(const std::string& name,
                                std::vector<std::string> terms) {
  if (name == "ranked") return Query::bag(std::move(terms));
  if (name == "conjunctive") return Query::conjunction(std::move(terms));
  if (name == "disjunctive") return Query::disjunction(std::move(terms));
  return std::nullopt;
}

bool known_mode(const std::string& name) {
  return name == "ranked" || name == "conjunctive" || name == "disjunctive";
}

int cmd_query(int argc, char** argv, bool phrase) {
  ArgParser args(phrase ? "phrase" : "query", "<index_dir> <term...>", {});
  if (!args.parse(argc, argv)) return args.help_requested() ? 0 : 2;
  if (args.positionals().size() < 2) {
    args.print_usage(stderr);
    return 2;
  }
  const std::string& dir = args.positionals()[0];
  std::vector<std::string> terms;
  for (std::size_t i = 1; i < args.positionals().size(); ++i) {
    terms.push_back(normalize_term(args.positionals()[i]));
  }

  // Both verbs ride the Query AST through the uniform backend, so phrase
  // works on batch, live, and cluster directories alike.
  auto opened = open_backend(dir);
  if (!opened.has_value()) return report_error(opened.error());
  QueryRequest request;
  request.query =
      phrase ? Query::phrase(std::move(terms)) : Query::conjunction(std::move(terms));
  request.k = 20;
  auto response = opened.value().backend->search(request);
  if (!response.has_value()) return report_error(response.error());
  const auto& hits = response.value().hits;
  if (hits.empty()) {
    std::printf("no results (%s)\n", phrase ? "no document contains the phrase"
                                            : "a term is absent");
    return 0;
  }
  std::printf("top %zu matching documents (%s)\n", hits.size(),
              phrase ? "phrase occurrences" : "summed tf");
  for (const auto& hit : hits) {
    std::printf("  doc %-10u score %.0f\n", hit.doc_id, hit.score);
  }
  return 0;
}

int cmd_search(int argc, char** argv) {
  ArgParser args(
      "search", "<index_dir> <query...>",
      {{"k", true, "results to return (default 10)"},
       {"mode", true,
        "(deprecated) ranked | conjunctive | disjunctive — treats the "
        "arguments as flat terms instead of the query language"},
       {"deadline-ms", true, "per-query deadline in ms (default none)"},
       {"exhaustive", false, "use the exhaustive scorer (no MaxScore)"}});
  if (!args.parse(argc, argv)) return args.help_requested() ? 0 : 2;
  if (args.positionals().size() < 2) {
    args.print_usage(stderr);
    return 2;
  }
  auto opened = open_backend(args.positionals()[0]);
  if (!opened.has_value()) return report_error(opened.error());

  QueryRequest request;
  if (args.has("mode")) {
    // Legacy shim: flat terms combined by the named mode.
    std::vector<std::string> terms;
    for (std::size_t i = 1; i < args.positionals().size(); ++i) {
      terms.push_back(normalize_term(args.positionals()[i]));
    }
    auto legacy = mode_query(args.str("mode"), std::move(terms));
    if (!legacy) {
      std::fprintf(stderr, "unknown --mode '%s'\n", args.str("mode").c_str());
      return 2;
    }
    request.query = std::move(*legacy);
  } else {
    // The query language (docs/QUERIES.md): the remaining arguments joined
    // form one expression, e.g.  search idx 'fast "inverted files" AND gpu'
    std::string text;
    for (std::size_t i = 1; i < args.positionals().size(); ++i) {
      if (!text.empty()) text += ' ';
      text += args.positionals()[i];
    }
    auto parsed = parse_query(text);
    if (!parsed.has_value()) return report_error(parsed.error());
    request.query = std::move(parsed).value();
  }
  request.k = static_cast<std::size_t>(args.num("k", 10));
  request.exhaustive = args.has("exhaustive");
  if (args.has("deadline-ms")) {
    request.timeout = std::chrono::microseconds(
        static_cast<std::int64_t>(args.num("deadline-ms", 0) * 1000));
  }

  auto response = opened.value().backend->search(request);
  if (!response.has_value()) return report_error(response.error());
  const auto& r = response.value();
  if (r.hits.empty()) {
    std::printf("no results%s%s\n", r.degraded() ? " (partial: " : "",
                r.degraded() ? (std::string(degradation_name(r.degradation)) + ")").c_str()
                             : "");
    return 0;
  }
  for (std::size_t i = 0; i < r.hits.size(); ++i) {
    const std::string url = opened.value().url_of(r.hits[i].doc_id);
    std::printf("%2zu. %-48s  (doc %u, score %.3f)\n", i + 1,
                url.empty() ? "<no doc map>" : url.c_str(), r.hits[i].doc_id,
                r.hits[i].score);
  }
  std::printf("%s %s query in %.2f ms (lookup %.2f, score %.2f)\n",
              r.from_cache ? "served cached" : "executed",
              query_class_name(r.query_class()), r.timings.total_seconds * 1e3,
              r.timings.lookup_seconds * 1e3, r.timings.score_seconds * 1e3);
  if (r.degraded()) {
    std::printf("  [partial: %s]\n", degradation_name(r.degradation));
  }
  if (r.shards_total > 0) {
    std::printf("  shards answered %u/%u\n", r.shards_answered, r.shards_total);
  }
  return 0;
}

int cmd_serve(int argc, char** argv) {
  ArgParser args(
      "serve", "<index_dir> [queries_file]",
      {{"threads", true, "executor threads (default 4)"},
       {"queue", true, "admission queue capacity (default 64)"},
       {"k", true, "results per query (default 10)"},
       {"mode", true,
        "(deprecated) ranked | conjunctive | disjunctive — treats each line "
        "as flat terms instead of the query language"},
       {"deadline-ms", true, "per-query deadline in ms (default none)"},
       {"repeat", true, "passes over the query set (default 1)"},
       {"metrics", false, "dump Prometheus metrics at the end"}});
  if (!args.parse(argc, argv)) return args.help_requested() ? 0 : 2;
  if (args.positionals().empty() || args.positionals().size() > 2) {
    args.print_usage(stderr);
    return 2;
  }
  auto opened = open_backend(args.positionals()[0]);
  if (!opened.has_value()) return report_error(opened.error());

  const bool legacy_mode = args.has("mode");
  if (legacy_mode && !known_mode(args.str("mode"))) {
    std::fprintf(stderr, "unknown --mode '%s'\n", args.str("mode").c_str());
    return 2;
  }

  // One query per input line in the query language (docs/QUERIES.md);
  // under the deprecated --mode, lines are whitespace-separated raw terms.
  std::vector<Query> queries;
  {
    std::ifstream file;
    const bool from_file =
        args.positionals().size() == 2 && args.positionals()[1] != "-";
    if (from_file) {
      file.open(args.positionals()[1]);
      if (!file) {
        std::fprintf(stderr, "cannot read %s\n", args.positionals()[1].c_str());
        return 1;
      }
    }
    std::istream& in = from_file ? file : std::cin;
    std::string line;
    while (std::getline(in, line)) {
      if (line.find_first_not_of(" \t") == std::string::npos) continue;
      if (legacy_mode) {
        std::vector<std::string> terms;
        std::size_t pos = 0;
        while (pos < line.size()) {
          const std::size_t ws = line.find_first_of(" \t", pos);
          const std::string word = line.substr(pos, ws - pos);
          if (!word.empty()) terms.push_back(normalize_term(word));
          if (ws == std::string::npos) break;
          pos = ws + 1;
        }
        if (terms.empty()) continue;
        queries.push_back(*mode_query(args.str("mode"), std::move(terms)));
      } else {
        auto parsed = parse_query(line);
        if (!parsed.has_value()) {
          std::fprintf(stderr, "bad query '%s': %s\n", line.c_str(),
                       parsed.error().message.c_str());
          return 1;
        }
        queries.push_back(std::move(parsed).value());
      }
    }
  }
  if (queries.empty()) {
    std::fprintf(stderr, "no queries (one per line; see docs/QUERIES.md)\n");
    return 1;
  }

  SearchServiceOptions options;
  options.threads = static_cast<std::size_t>(args.num("threads", 4));
  options.queue_capacity = static_cast<std::size_t>(args.num("queue", 64));
  SearchService service(opened.value().backend, options);

  QueryRequest proto;
  proto.k = static_cast<std::size_t>(args.num("k", 10));
  if (args.has("deadline-ms")) {
    proto.timeout = std::chrono::microseconds(
        static_cast<std::int64_t>(args.num("deadline-ms", 0) * 1000));
  }

  const std::size_t repeat = std::max<std::size_t>(1, static_cast<std::size_t>(args.num("repeat", 1)));
  // Latencies bucketed by the class the backend reports
  // (QueryResponse::query_class) — tail latency is only meaningful per
  // class when ranked, phrase, and proximity queries share one pool.
  constexpr std::size_t kClasses = 5;
  std::vector<double> latencies;
  std::vector<double> class_latencies[kClasses];
  std::uint64_t answered = 0, shed = 0, rejected = 0;
  // Partial responses by degradation class (kComplete slot stays zero).
  std::uint64_t partials[4] = {0, 0, 0, 0};
  std::uint64_t shards_answered_min = 0, shards_total = 0;
  WallTimer timer;
  // Keep at most one queue's worth of futures in flight: submit until
  // try_push sheds, then drain — the admission queue is the window.
  std::vector<std::future<Expected<QueryResponse>>> inflight;
  const auto drain = [&] {
    for (auto& fut : inflight) {
      auto result = fut.get();
      if (!result.has_value()) {
        if (result.error().code == ErrorCode::kOverloaded) ++shed;
        if (result.error().code == ErrorCode::kDeadlineExceeded) ++rejected;
        continue;
      }
      ++answered;
      const auto& ok = result.value();
      ++partials[static_cast<std::size_t>(ok.degradation)];
      if (ok.shards_total > 0) {
        shards_total = ok.shards_total;
        shards_answered_min = shards_answered_min == 0
                                  ? ok.shards_answered
                                  : std::min<std::uint64_t>(shards_answered_min,
                                                            ok.shards_answered);
      }
      latencies.push_back(ok.timings.total_seconds);
      const auto cls = static_cast<std::size_t>(ok.query_class());
      if (cls < kClasses) class_latencies[cls].push_back(ok.timings.total_seconds);
    }
    inflight.clear();
  };
  for (std::size_t pass = 0; pass < repeat; ++pass) {
    for (const auto& query : queries) {
      QueryRequest request = proto;
      request.query = query;
      inflight.push_back(service.submit(std::move(request)));
      if (inflight.size() >= service.queue_capacity()) drain();
    }
  }
  drain();
  const double wall = timer.seconds();

  const auto pct_of = [](const std::vector<double>& sorted, double q) {
    if (sorted.empty()) return 0.0;
    const std::size_t i =
        std::min(sorted.size() - 1, static_cast<std::size_t>(q * sorted.size()));
    return sorted[i] * 1e3;
  };
  std::sort(latencies.begin(), latencies.end());
  const auto pct = [&](double q) { return pct_of(latencies, q); };
  std::printf("%llu queries answered in %.2f s  (%.0f QPS, %zu threads)\n",
              static_cast<unsigned long long>(answered), wall,
              answered / std::max(wall, 1e-9), service.threads());
  std::printf("latency ms  p50 %.3f  p95 %.3f  p99 %.3f\n", pct(0.50), pct(0.95),
              pct(0.99));
  for (std::size_t c = 0; c < kClasses; ++c) {
    auto& lat = class_latencies[c];
    if (lat.empty()) continue;
    std::sort(lat.begin(), lat.end());
    std::printf("  %-12s %6zu queries  p50 %.3f  p95 %.3f  p99 %.3f\n",
                query_class_name(static_cast<QueryClass>(c)), lat.size(),
                pct_of(lat, 0.50), pct_of(lat, 0.95), pct_of(lat, 0.99));
  }
  const std::uint64_t degraded = partials[1] + partials[2] + partials[3];
  if (shed + rejected + degraded > 0) {
    std::printf("shed %llu  deadline-rejected %llu  partial %llu "
                "(deadline %llu, shed %llu, shard %llu)\n",
                static_cast<unsigned long long>(shed),
                static_cast<unsigned long long>(rejected),
                static_cast<unsigned long long>(degraded),
                static_cast<unsigned long long>(
                    partials[static_cast<std::size_t>(Degradation::kDeadlinePartial)]),
                static_cast<unsigned long long>(
                    partials[static_cast<std::size_t>(Degradation::kShedPartial)]),
                static_cast<unsigned long long>(
                    partials[static_cast<std::size_t>(Degradation::kShardPartial)]));
  }
  if (shards_total > 0) {
    std::printf("cluster: %llu shards, worst response answered %llu/%llu\n",
                static_cast<unsigned long long>(shards_total),
                static_cast<unsigned long long>(shards_answered_min),
                static_cast<unsigned long long>(shards_total));
  }
  if (args.has("metrics")) {
    std::fputs(service.metrics().to_prometheus().c_str(), stdout);
  }
  return 0;
}

int cmd_stats(int argc, char** argv) {
  ArgParser args("stats", "<index_dir>", {});
  if (!args.parse(argc, argv)) return args.help_requested() ? 0 : 2;
  if (args.positionals().size() != 1) {
    args.print_usage(stderr);
    return 2;
  }
  const std::string& dir = args.positionals()[0];
  if (is_live_dir(dir)) {
    auto live = LiveIndex::open(dir);
    if (!live.has_value()) return report_error(live.error());
    const auto snap = live.value().snapshot();
    std::printf("live index: %llu live docs (%llu total, %llu tombstoned), "
                "%llu distinct terms, %zu segments\n",
                static_cast<unsigned long long>(snap->doc_count()),
                static_cast<unsigned long long>(snap->total_docs()),
                static_cast<unsigned long long>(snap->deleted_docs()),
                static_cast<unsigned long long>(snap->term_count()),
                snap->segment_count());
    const auto manifest = manifest_read(dir);
    for (const auto& seg : snap->segments()) {
      std::uint64_t reclaimed = 0;
      if (manifest.has_value()) {
        for (const auto& e : manifest.value().entries) {
          if (e.segment_id == seg->id()) reclaimed = e.reclaimed_docs;
        }
      }
      const std::uint64_t dead =
          snap->tombstones() == nullptr
              ? 0
              : snap->tombstones()->count_in_range(seg->doc_base(), seg->doc_count());
      std::printf("  seg-%04llu: docs [%u, %u), %llu terms, %s, %llu/%llu dead docs reclaimed\n",
                  static_cast<unsigned long long>(seg->id()), seg->doc_base(),
                  seg->doc_base() + seg->doc_count(),
                  static_cast<unsigned long long>(seg->reader().term_count()),
                  format_bytes(seg->reader().file_bytes()).c_str(),
                  static_cast<unsigned long long>(reclaimed),
                  static_cast<unsigned long long>(dead));
    }
    return 0;
  }
  auto opened = InvertedIndex::open(dir, {});
  if (!opened.has_value()) return report_error(opened.error());
  const auto& index = opened.value();
  if (index.segment_backed()) {
    const auto* seg = index.segment();
    std::printf("segment: %s (%s, %s mapped), %llu terms\n", seg->path().c_str(),
                format_bytes(seg->file_bytes()).c_str(),
                format_bytes(seg->mapped_bytes()).c_str(),
                static_cast<unsigned long long>(seg->term_count()));
  } else {
    std::printf("terms: %llu, runs: %zu\n",
                static_cast<unsigned long long>(index.term_count()), index.run_count());
  }
  // Top-10 longest postings lists.
  std::vector<std::pair<std::size_t, std::string>> top;
  index.for_each_term([&](std::string_view term) {
    const auto p = index.lookup(term);
    top.emplace_back(p->doc_ids.size(), std::string(term));
  });
  std::sort(top.rbegin(), top.rend());
  std::printf("most frequent terms:\n");
  for (std::size_t i = 0; i < top.size() && i < 10; ++i) {
    std::printf("  %-20s %zu docs\n", top[i].second.c_str(), top[i].first);
  }
  return 0;
}

int cmd_verify(int argc, char** argv) {
  ArgParser args("verify", "<index_dir>", {});
  if (!args.parse(argc, argv)) return args.help_requested() ? 0 : 2;
  if (args.positionals().size() != 1) {
    args.print_usage(stderr);
    return 2;
  }
  const auto report = verify_index(args.positionals()[0]);
  std::printf("terms %llu, runs %llu, postings %llu, encoded %s\n",
              static_cast<unsigned long long>(report.terms),
              static_cast<unsigned long long>(report.runs),
              static_cast<unsigned long long>(report.postings),
              format_bytes(report.encoded_bytes).c_str());
  if (report.ok) {
    std::printf("index OK\n");
    return 0;
  }
  for (const auto& e : report.errors) std::printf("ERROR: %s\n", e.c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  if (cmd == "generate") return cmd_generate(argc - 2, argv + 2);
  if (cmd == "build") return cmd_build(argc - 2, argv + 2);
  if (cmd == "compact") return cmd_compact(argc - 2, argv + 2);
  if (cmd == "live") return cmd_live(argc - 2, argv + 2);
  if (cmd == "cluster") return cmd_cluster(argc - 2, argv + 2);
  if (cmd == "query") return cmd_query(argc - 2, argv + 2, false);
  if (cmd == "search") return cmd_search(argc - 2, argv + 2);
  if (cmd == "serve") return cmd_serve(argc - 2, argv + 2);
  if (cmd == "phrase") return cmd_query(argc - 2, argv + 2, true);
  if (cmd == "stats") return cmd_stats(argc - 2, argv + 2);
  if (cmd == "verify") return cmd_verify(argc - 2, argv + 2);
  return usage();
}
