/// \file hetindex_cli.cpp
/// Command-line front end — the operational tool a downstream team would
/// actually run. Subcommands:
///
///   hetindex_cli generate <dir> [--preset clueweb|wikipedia|congress] [--mb N]
///   hetindex_cli build <corpus_dir> <index_dir> [--parsers N] [--cpus N]
///                      [--gpus N] [--positions] [--merge] [--segment]
///                      [--progress] [--metrics] [--report-json <path>]
///   hetindex_cli compact <index_dir>                  (fold runs into index.seg)
///   hetindex_cli query <index_dir> <term...>          (AND semantics)
///   hetindex_cli search <index_dir> <term...>         (BM25 top-10, with URLs)
///   hetindex_cli phrase <index_dir> <term...>         (adjacent positions)
///   hetindex_cli stats <index_dir>
///   hetindex_cli verify <index_dir>
///
/// query/search/phrase/stats serve from the compacted segment automatically
/// when one exists.

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "core/hetindex.hpp"

using namespace hetindex;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: hetindex_cli <generate|build|compact|query|search|phrase|stats|verify> ...\n"
               "  generate <dir> [--preset clueweb|wikipedia|congress] [--mb N]\n"
               "  build <corpus_dir> <index_dir> [--parsers N] [--cpus N] [--gpus N]\n"
               "        [--positions] [--merge] [--segment] [--progress] [--metrics]\n"
               "        [--report-json <path>]\n"
               "  compact <index_dir>\n"
               "  query <index_dir> <term...>\n"
               "  search <index_dir> <term...>\n"
               "  phrase <index_dir> <term...>\n"
               "  stats <index_dir>\n"
               "  verify <index_dir>\n");
  return 2;
}

std::vector<std::string> corpus_files(const std::string& dir) {
  std::vector<std::string> files;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() == ".hdc") files.push_back(entry.path().string());
  }
  std::sort(files.begin(), files.end());
  return files;
}

int cmd_generate(int argc, char** argv) {
  if (argc < 1) return usage();
  const std::string dir = argv[0];
  std::string preset = "wikipedia";
  double mb = 16;
  for (int i = 1; i + 1 < argc + 1; ++i) {
    if (i + 1 <= argc - 1 && std::strcmp(argv[i], "--preset") == 0) preset = argv[++i];
    else if (i + 1 <= argc - 1 && std::strcmp(argv[i], "--mb") == 0) mb = std::atof(argv[++i]);
  }
  CollectionSpec spec = preset == "clueweb"    ? clueweb_like()
                        : preset == "congress" ? congress_like()
                                               : wikipedia_like();
  spec.total_bytes = static_cast<std::uint64_t>(mb * (1 << 20));
  const auto coll = generate_collection(spec, dir);
  std::printf("generated %zu files, %s compressed / %s raw, %llu docs\n",
              coll.files.size(), format_bytes(coll.total_compressed()).c_str(),
              format_bytes(coll.total_uncompressed()).c_str(),
              static_cast<unsigned long long>(coll.total_docs()));
  return 0;
}

int cmd_build(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string corpus_dir = argv[0];
  const std::string index_dir = argv[1];
  IndexBuilder builder;
  builder.parsers(2).cpu_indexers(2).gpus(2);
  bool dump_metrics = false;
  std::string report_json_path;
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--parsers") == 0 && i + 1 < argc) {
      builder.parsers(static_cast<std::size_t>(std::atoi(argv[++i])));
    } else if (std::strcmp(argv[i], "--cpus") == 0 && i + 1 < argc) {
      builder.cpu_indexers(static_cast<std::size_t>(std::atoi(argv[++i])));
    } else if (std::strcmp(argv[i], "--gpus") == 0 && i + 1 < argc) {
      builder.gpus(static_cast<std::size_t>(std::atoi(argv[++i])));
    } else if (std::strcmp(argv[i], "--positions") == 0) {
      builder.config().parser.record_positions = true;
    } else if (std::strcmp(argv[i], "--merge") == 0) {
      builder.merge_output(true);
    } else if (std::strcmp(argv[i], "--segment") == 0) {
      builder.emit_segment(true);
    } else if (std::strcmp(argv[i], "--progress") == 0) {
      builder.progress([](const PipelineProgress& p) {
        std::fprintf(stderr, "\rrun %llu/%llu  %llu docs  %.1f MB/s",
                     static_cast<unsigned long long>(p.runs_completed),
                     static_cast<unsigned long long>(p.files_total),
                     static_cast<unsigned long long>(p.documents), p.throughput_mb_s());
        if (p.runs_completed == p.files_total) std::fputc('\n', stderr);
      });
    } else if (std::strcmp(argv[i], "--metrics") == 0) {
      dump_metrics = true;
    } else if (std::strcmp(argv[i], "--report-json") == 0 && i + 1 < argc) {
      report_json_path = argv[++i];
    } else {
      std::fprintf(stderr, "unknown or incomplete option: %s\n", argv[i]);
      return usage();
    }
  }
  // Refuse contradictory configurations up front with the full error list
  // instead of aborting mid-build.
  if (const auto errors = builder.validate(); !errors.empty()) {
    for (const auto& e : errors) std::fprintf(stderr, "config error: %s\n", e.c_str());
    return 2;
  }
  const auto files = corpus_files(corpus_dir);
  if (files.empty()) {
    std::fprintf(stderr, "no .hdc container files under %s\n", corpus_dir.c_str());
    return 1;
  }
  const auto report = builder.build(files, index_dir);
  std::printf("indexed %llu docs / %llu tokens into %llu terms across %zu runs\n",
              static_cast<unsigned long long>(report.documents),
              static_cast<unsigned long long>(report.tokens),
              static_cast<unsigned long long>(report.terms), report.runs.size());
  std::printf("wall %.2f s (%.1f MB/s on this host); CPU/GPU token split %llu / %llu\n",
              report.total_seconds, report.throughput_mb_s(),
              static_cast<unsigned long long>(report.cpu_total().tokens),
              static_cast<unsigned long long>(report.gpu_total().tokens));
  if (report.segment_bytes > 0) {
    std::printf("segment: %s written in %.2f s\n",
                format_bytes(report.segment_bytes).c_str(), report.segment_seconds);
  }
  if (!report_json_path.empty()) {
    std::ofstream out(report_json_path, std::ios::binary);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", report_json_path.c_str());
      return 1;
    }
    out << report.to_json() << '\n';
    std::printf("report written to %s\n", report_json_path.c_str());
  }
  if (dump_metrics) std::fputs(report.metrics.to_prometheus().c_str(), stdout);
  return 0;
}

int cmd_compact(int argc, char** argv) {
  if (argc < 1) return usage();
  const std::string index_dir = argv[0];
  const auto stats = compact_index(index_dir);
  std::printf("compacted %llu runs into %s: %llu terms, %llu postings, %s -> %s\n",
              static_cast<unsigned long long>(stats.runs),
              IndexLayout::segment_path(index_dir).c_str(),
              static_cast<unsigned long long>(stats.terms),
              static_cast<unsigned long long>(stats.postings),
              format_bytes(stats.input_bytes).c_str(),
              format_bytes(stats.output_bytes).c_str());
  return 0;
}

int cmd_query(int argc, char** argv, bool phrase) {
  if (argc < 2) return usage();
  const auto index = InvertedIndex::open(argv[0]);
  std::vector<std::string> terms;
  for (int i = 1; i < argc; ++i) terms.push_back(normalize_term(argv[i]));
  const auto hits = phrase ? phrase_query(index, terms) : conjunctive_query(index, terms);
  if (!hits) {
    std::printf("no results (a term is absent%s)\n",
                phrase ? " or the index has no positions" : "");
    return 0;
  }
  std::printf("%zu matching documents\n", hits->doc_ids.size());
  for (std::size_t i = 0; i < hits->doc_ids.size() && i < 20; ++i) {
    std::printf("  doc %-10u score %u\n", hits->doc_ids[i], hits->tfs[i]);
  }
  if (hits->doc_ids.size() > 20) std::printf("  ... (%zu more)\n", hits->doc_ids.size() - 20);
  return 0;
}

int cmd_search(int argc, char** argv) {
  if (argc < 2) return usage();
  const auto index = InvertedIndex::open(argv[0]);
  const auto docs = DocMap::open(doc_map_path(argv[0]));
  std::vector<std::string> terms;
  for (int i = 1; i < argc; ++i) terms.push_back(normalize_term(argv[i]));
  const auto hits = bm25_query(index, docs, terms, 10);
  if (hits.empty()) {
    std::printf("no results\n");
    return 0;
  }
  for (std::size_t i = 0; i < hits.size(); ++i) {
    std::printf("%2zu. %-48s  (doc %u, score %.3f)\n", i + 1,
                docs.location(hits[i].doc_id).url.c_str(), hits[i].doc_id,
                hits[i].score);
  }
  return 0;
}

int cmd_stats(int argc, char** argv) {
  if (argc < 1) return usage();
  const auto index = InvertedIndex::open(argv[0]);
  if (index.segment_backed()) {
    const auto* seg = index.segment();
    std::printf("segment: %s (%s, %s mapped), %llu terms\n", seg->path().c_str(),
                format_bytes(seg->file_bytes()).c_str(),
                format_bytes(seg->mapped_bytes()).c_str(),
                static_cast<unsigned long long>(seg->term_count()));
  } else {
    std::printf("terms: %llu, runs: %zu\n",
                static_cast<unsigned long long>(index.term_count()), index.run_count());
  }
  // Top-10 longest postings lists.
  std::vector<std::pair<std::size_t, std::string>> top;
  index.for_each_term([&](std::string_view term) {
    const auto p = index.lookup(term);
    top.emplace_back(p->doc_ids.size(), std::string(term));
  });
  std::sort(top.rbegin(), top.rend());
  std::printf("most frequent terms:\n");
  for (std::size_t i = 0; i < top.size() && i < 10; ++i) {
    std::printf("  %-20s %zu docs\n", top[i].second.c_str(), top[i].first);
  }
  return 0;
}

int cmd_verify(int argc, char** argv) {
  if (argc < 1) return usage();
  const auto report = verify_index(argv[0]);
  std::printf("terms %llu, runs %llu, postings %llu, encoded %s\n",
              static_cast<unsigned long long>(report.terms),
              static_cast<unsigned long long>(report.runs),
              static_cast<unsigned long long>(report.postings),
              format_bytes(report.encoded_bytes).c_str());
  if (report.ok) {
    std::printf("index OK\n");
    return 0;
  }
  for (const auto& e : report.errors) std::printf("ERROR: %s\n", e.c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  if (cmd == "generate") return cmd_generate(argc - 2, argv + 2);
  if (cmd == "build") return cmd_build(argc - 2, argv + 2);
  if (cmd == "compact") return cmd_compact(argc - 2, argv + 2);
  if (cmd == "query") return cmd_query(argc - 2, argv + 2, false);
  if (cmd == "search") return cmd_search(argc - 2, argv + 2);
  if (cmd == "phrase") return cmd_query(argc - 2, argv + 2, true);
  if (cmd == "stats") return cmd_stats(argc - 2, argv + 2);
  if (cmd == "verify") return cmd_verify(argc - 2, argv + 2);
  return usage();
}
