# Empty dependencies file for web_archive_indexing.
# This may be replaced when dependencies are built.
