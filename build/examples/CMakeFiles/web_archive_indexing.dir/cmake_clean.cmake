file(REMOVE_RECURSE
  "CMakeFiles/web_archive_indexing.dir/web_archive_indexing.cpp.o"
  "CMakeFiles/web_archive_indexing.dir/web_archive_indexing.cpp.o.d"
  "web_archive_indexing"
  "web_archive_indexing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/web_archive_indexing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
