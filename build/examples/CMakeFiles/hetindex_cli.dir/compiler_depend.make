# Empty compiler generated dependencies file for hetindex_cli.
# This may be replaced when dependencies are built.
