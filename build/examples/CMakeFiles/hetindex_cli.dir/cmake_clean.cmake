file(REMOVE_RECURSE
  "CMakeFiles/hetindex_cli.dir/hetindex_cli.cpp.o"
  "CMakeFiles/hetindex_cli.dir/hetindex_cli.cpp.o.d"
  "hetindex_cli"
  "hetindex_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hetindex_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
