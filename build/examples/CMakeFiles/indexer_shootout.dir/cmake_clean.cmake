file(REMOVE_RECURSE
  "CMakeFiles/indexer_shootout.dir/indexer_shootout.cpp.o"
  "CMakeFiles/indexer_shootout.dir/indexer_shootout.cpp.o.d"
  "indexer_shootout"
  "indexer_shootout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/indexer_shootout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
