# Empty compiler generated dependencies file for indexer_shootout.
# This may be replaced when dependencies are built.
