# Empty dependencies file for hetindex.
# This may be replaced when dependencies are built.
