file(REMOVE_RECURSE
  "libhetindex.a"
)
