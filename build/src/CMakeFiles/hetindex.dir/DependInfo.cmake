
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baseline/baselines.cpp" "src/CMakeFiles/hetindex.dir/baseline/baselines.cpp.o" "gcc" "src/CMakeFiles/hetindex.dir/baseline/baselines.cpp.o.d"
  "/root/repo/src/codec/front_coding.cpp" "src/CMakeFiles/hetindex.dir/codec/front_coding.cpp.o" "gcc" "src/CMakeFiles/hetindex.dir/codec/front_coding.cpp.o.d"
  "/root/repo/src/codec/lz.cpp" "src/CMakeFiles/hetindex.dir/codec/lz.cpp.o" "gcc" "src/CMakeFiles/hetindex.dir/codec/lz.cpp.o.d"
  "/root/repo/src/codec/posting_codecs.cpp" "src/CMakeFiles/hetindex.dir/codec/posting_codecs.cpp.o" "gcc" "src/CMakeFiles/hetindex.dir/codec/posting_codecs.cpp.o.d"
  "/root/repo/src/core/hetindex.cpp" "src/CMakeFiles/hetindex.dir/core/hetindex.cpp.o" "gcc" "src/CMakeFiles/hetindex.dir/core/hetindex.cpp.o.d"
  "/root/repo/src/corpus/container.cpp" "src/CMakeFiles/hetindex.dir/corpus/container.cpp.o" "gcc" "src/CMakeFiles/hetindex.dir/corpus/container.cpp.o.d"
  "/root/repo/src/corpus/synthetic.cpp" "src/CMakeFiles/hetindex.dir/corpus/synthetic.cpp.o" "gcc" "src/CMakeFiles/hetindex.dir/corpus/synthetic.cpp.o.d"
  "/root/repo/src/dict/btree.cpp" "src/CMakeFiles/hetindex.dir/dict/btree.cpp.o" "gcc" "src/CMakeFiles/hetindex.dir/dict/btree.cpp.o.d"
  "/root/repo/src/dict/dictionary.cpp" "src/CMakeFiles/hetindex.dir/dict/dictionary.cpp.o" "gcc" "src/CMakeFiles/hetindex.dir/dict/dictionary.cpp.o.d"
  "/root/repo/src/dict/trie_table.cpp" "src/CMakeFiles/hetindex.dir/dict/trie_table.cpp.o" "gcc" "src/CMakeFiles/hetindex.dir/dict/trie_table.cpp.o.d"
  "/root/repo/src/gpusim/gpu_btree.cpp" "src/CMakeFiles/hetindex.dir/gpusim/gpu_btree.cpp.o" "gcc" "src/CMakeFiles/hetindex.dir/gpusim/gpu_btree.cpp.o.d"
  "/root/repo/src/gpusim/simt.cpp" "src/CMakeFiles/hetindex.dir/gpusim/simt.cpp.o" "gcc" "src/CMakeFiles/hetindex.dir/gpusim/simt.cpp.o.d"
  "/root/repo/src/index/indexer.cpp" "src/CMakeFiles/hetindex.dir/index/indexer.cpp.o" "gcc" "src/CMakeFiles/hetindex.dir/index/indexer.cpp.o.d"
  "/root/repo/src/index/sampler.cpp" "src/CMakeFiles/hetindex.dir/index/sampler.cpp.o" "gcc" "src/CMakeFiles/hetindex.dir/index/sampler.cpp.o.d"
  "/root/repo/src/mapreduce/mr_engine.cpp" "src/CMakeFiles/hetindex.dir/mapreduce/mr_engine.cpp.o" "gcc" "src/CMakeFiles/hetindex.dir/mapreduce/mr_engine.cpp.o.d"
  "/root/repo/src/mapreduce/mr_indexers.cpp" "src/CMakeFiles/hetindex.dir/mapreduce/mr_indexers.cpp.o" "gcc" "src/CMakeFiles/hetindex.dir/mapreduce/mr_indexers.cpp.o.d"
  "/root/repo/src/mapreduce/remote_lists.cpp" "src/CMakeFiles/hetindex.dir/mapreduce/remote_lists.cpp.o" "gcc" "src/CMakeFiles/hetindex.dir/mapreduce/remote_lists.cpp.o.d"
  "/root/repo/src/parse/parsed_block.cpp" "src/CMakeFiles/hetindex.dir/parse/parsed_block.cpp.o" "gcc" "src/CMakeFiles/hetindex.dir/parse/parsed_block.cpp.o.d"
  "/root/repo/src/parse/parser.cpp" "src/CMakeFiles/hetindex.dir/parse/parser.cpp.o" "gcc" "src/CMakeFiles/hetindex.dir/parse/parser.cpp.o.d"
  "/root/repo/src/parse/read_scheduler.cpp" "src/CMakeFiles/hetindex.dir/parse/read_scheduler.cpp.o" "gcc" "src/CMakeFiles/hetindex.dir/parse/read_scheduler.cpp.o.d"
  "/root/repo/src/pipeline/engine.cpp" "src/CMakeFiles/hetindex.dir/pipeline/engine.cpp.o" "gcc" "src/CMakeFiles/hetindex.dir/pipeline/engine.cpp.o.d"
  "/root/repo/src/postings/boolean_ops.cpp" "src/CMakeFiles/hetindex.dir/postings/boolean_ops.cpp.o" "gcc" "src/CMakeFiles/hetindex.dir/postings/boolean_ops.cpp.o.d"
  "/root/repo/src/postings/doc_map.cpp" "src/CMakeFiles/hetindex.dir/postings/doc_map.cpp.o" "gcc" "src/CMakeFiles/hetindex.dir/postings/doc_map.cpp.o.d"
  "/root/repo/src/postings/merger.cpp" "src/CMakeFiles/hetindex.dir/postings/merger.cpp.o" "gcc" "src/CMakeFiles/hetindex.dir/postings/merger.cpp.o.d"
  "/root/repo/src/postings/query.cpp" "src/CMakeFiles/hetindex.dir/postings/query.cpp.o" "gcc" "src/CMakeFiles/hetindex.dir/postings/query.cpp.o.d"
  "/root/repo/src/postings/ranking.cpp" "src/CMakeFiles/hetindex.dir/postings/ranking.cpp.o" "gcc" "src/CMakeFiles/hetindex.dir/postings/ranking.cpp.o.d"
  "/root/repo/src/postings/run_file.cpp" "src/CMakeFiles/hetindex.dir/postings/run_file.cpp.o" "gcc" "src/CMakeFiles/hetindex.dir/postings/run_file.cpp.o.d"
  "/root/repo/src/postings/verify.cpp" "src/CMakeFiles/hetindex.dir/postings/verify.cpp.o" "gcc" "src/CMakeFiles/hetindex.dir/postings/verify.cpp.o.d"
  "/root/repo/src/sim/pipeline_sim.cpp" "src/CMakeFiles/hetindex.dir/sim/pipeline_sim.cpp.o" "gcc" "src/CMakeFiles/hetindex.dir/sim/pipeline_sim.cpp.o.d"
  "/root/repo/src/text/html_strip.cpp" "src/CMakeFiles/hetindex.dir/text/html_strip.cpp.o" "gcc" "src/CMakeFiles/hetindex.dir/text/html_strip.cpp.o.d"
  "/root/repo/src/text/porter.cpp" "src/CMakeFiles/hetindex.dir/text/porter.cpp.o" "gcc" "src/CMakeFiles/hetindex.dir/text/porter.cpp.o.d"
  "/root/repo/src/text/stopwords.cpp" "src/CMakeFiles/hetindex.dir/text/stopwords.cpp.o" "gcc" "src/CMakeFiles/hetindex.dir/text/stopwords.cpp.o.d"
  "/root/repo/src/text/tokenizer.cpp" "src/CMakeFiles/hetindex.dir/text/tokenizer.cpp.o" "gcc" "src/CMakeFiles/hetindex.dir/text/tokenizer.cpp.o.d"
  "/root/repo/src/util/binary_io.cpp" "src/CMakeFiles/hetindex.dir/util/binary_io.cpp.o" "gcc" "src/CMakeFiles/hetindex.dir/util/binary_io.cpp.o.d"
  "/root/repo/src/util/crc32.cpp" "src/CMakeFiles/hetindex.dir/util/crc32.cpp.o" "gcc" "src/CMakeFiles/hetindex.dir/util/crc32.cpp.o.d"
  "/root/repo/src/util/stats.cpp" "src/CMakeFiles/hetindex.dir/util/stats.cpp.o" "gcc" "src/CMakeFiles/hetindex.dir/util/stats.cpp.o.d"
  "/root/repo/src/util/zipf.cpp" "src/CMakeFiles/hetindex.dir/util/zipf.cpp.o" "gcc" "src/CMakeFiles/hetindex.dir/util/zipf.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
