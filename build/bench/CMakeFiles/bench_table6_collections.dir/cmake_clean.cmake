file(REMOVE_RECURSE
  "CMakeFiles/bench_table6_collections.dir/bench_table6_collections.cpp.o"
  "CMakeFiles/bench_table6_collections.dir/bench_table6_collections.cpp.o.d"
  "bench_table6_collections"
  "bench_table6_collections.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_collections.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
