# Empty dependencies file for bench_table6_collections.
# This may be replaced when dependencies are built.
