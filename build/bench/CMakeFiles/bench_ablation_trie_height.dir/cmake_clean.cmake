file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_trie_height.dir/bench_ablation_trie_height.cpp.o"
  "CMakeFiles/bench_ablation_trie_height.dir/bench_ablation_trie_height.cpp.o.d"
  "bench_ablation_trie_height"
  "bench_ablation_trie_height.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_trie_height.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
