# Empty dependencies file for bench_ablation_trie_height.
# This may be replaced when dependencies are built.
