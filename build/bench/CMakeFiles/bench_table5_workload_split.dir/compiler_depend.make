# Empty compiler generated dependencies file for bench_table5_workload_split.
# This may be replaced when dependencies are built.
