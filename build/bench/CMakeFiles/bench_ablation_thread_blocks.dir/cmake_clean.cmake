file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_thread_blocks.dir/bench_ablation_thread_blocks.cpp.o"
  "CMakeFiles/bench_ablation_thread_blocks.dir/bench_ablation_thread_blocks.cpp.o.d"
  "bench_ablation_thread_blocks"
  "bench_ablation_thread_blocks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_thread_blocks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
