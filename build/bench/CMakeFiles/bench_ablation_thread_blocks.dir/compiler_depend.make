# Empty compiler generated dependencies file for bench_ablation_thread_blocks.
# This may be replaced when dependencies are built.
