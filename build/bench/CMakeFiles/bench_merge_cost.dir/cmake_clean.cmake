file(REMOVE_RECURSE
  "CMakeFiles/bench_merge_cost.dir/bench_merge_cost.cpp.o"
  "CMakeFiles/bench_merge_cost.dir/bench_merge_cost.cpp.o.d"
  "bench_merge_cost"
  "bench_merge_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_merge_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
