# Empty compiler generated dependencies file for bench_merge_cost.
# This may be replaced when dependencies are built.
