file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_pipeline_window.dir/bench_ablation_pipeline_window.cpp.o"
  "CMakeFiles/bench_ablation_pipeline_window.dir/bench_ablation_pipeline_window.cpp.o.d"
  "bench_ablation_pipeline_window"
  "bench_ablation_pipeline_window.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_pipeline_window.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
