file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_positional.dir/bench_ablation_positional.cpp.o"
  "CMakeFiles/bench_ablation_positional.dir/bench_ablation_positional.cpp.o.d"
  "bench_ablation_positional"
  "bench_ablation_positional.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_positional.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
