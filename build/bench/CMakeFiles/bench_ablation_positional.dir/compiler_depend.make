# Empty compiler generated dependencies file for bench_ablation_positional.
# This may be replaced when dependencies are built.
