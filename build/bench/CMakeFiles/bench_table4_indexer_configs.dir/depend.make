# Empty dependencies file for bench_table4_indexer_configs.
# This may be replaced when dependencies are built.
