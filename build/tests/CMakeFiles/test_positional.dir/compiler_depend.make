# Empty compiler generated dependencies file for test_positional.
# This may be replaced when dependencies are built.
