file(REMOVE_RECURSE
  "CMakeFiles/test_positional.dir/test_positional.cpp.o"
  "CMakeFiles/test_positional.dir/test_positional.cpp.o.d"
  "test_positional"
  "test_positional.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_positional.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
