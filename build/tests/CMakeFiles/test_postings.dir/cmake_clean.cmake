file(REMOVE_RECURSE
  "CMakeFiles/test_postings.dir/test_postings.cpp.o"
  "CMakeFiles/test_postings.dir/test_postings.cpp.o.d"
  "test_postings"
  "test_postings.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_postings.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
