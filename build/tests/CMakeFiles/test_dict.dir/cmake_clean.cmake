file(REMOVE_RECURSE
  "CMakeFiles/test_dict.dir/test_dict.cpp.o"
  "CMakeFiles/test_dict.dir/test_dict.cpp.o.d"
  "test_dict"
  "test_dict.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dict.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
