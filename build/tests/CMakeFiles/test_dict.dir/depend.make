# Empty dependencies file for test_dict.
# This may be replaced when dependencies are built.
