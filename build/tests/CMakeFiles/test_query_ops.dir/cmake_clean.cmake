file(REMOVE_RECURSE
  "CMakeFiles/test_query_ops.dir/test_query_ops.cpp.o"
  "CMakeFiles/test_query_ops.dir/test_query_ops.cpp.o.d"
  "test_query_ops"
  "test_query_ops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_query_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
