# Empty compiler generated dependencies file for test_query_ops.
# This may be replaced when dependencies are built.
